package experiments

import (
	"fmt"
	"time"

	"privmem/internal/timeseries"

	"privmem/internal/attack/fingerprint"
	"privmem/internal/attack/niom"
	"privmem/internal/defense/gateway"
	"privmem/internal/home"
	"privmem/internal/nettrace"
)

// networkWorkload bundles the memoized §IV world; consumers read only.
type networkWorkload struct {
	lab, victim *nettrace.Capture
	tr          *home.Trace
}

// networkWorld builds the shared §IV workload: a lab capture for attacker
// training, and a victim ~40-device LAN coupled to a real home's activity.
// The world is memoized on (seed, quick); t8 and t9 derive different seeds
// under RunAll, so the memo pays off across repeated runs, not within one
// suite pass.
func networkWorld(opts Options) (lab, victim *nettrace.Capture, tr *home.Trace, err error) {
	w, err := memoWorld(memoKey("network", opts), func() (*networkWorkload, error) {
		l, v, t, err := networkWorldUncached(opts)
		if err != nil {
			return nil, err
		}
		return &networkWorkload{lab: l, victim: v, tr: t}, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return w.lab, w.victim, w.tr, nil
}

func networkWorldUncached(opts Options) (lab, victim *nettrace.Capture, tr *home.Trace, err error) {
	seed := opts.seed()
	days := 7
	if opts.Quick {
		days = 3
	}
	// The lab capture is independent of the home trace, so it builds
	// concurrently with the home → victim chain. Each simulation owns its
	// seeded generator, so the split cannot perturb any random stream — the
	// three captures are bit-identical to the sequential build (pinned by
	// suite.RunAllDeterministic and the golden figures).
	var labErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		labCfg := nettrace.DefaultConfig(seed + 1)
		labCfg.Days = 2
		labCfg.Counts = map[nettrace.Class]int{}
		for _, c := range nettrace.Classes() {
			labCfg.Counts[c] = 1
		}
		lab, labErr = nettrace.Simulate(labCfg)
	}()
	hcfg := home.DefaultConfig(seed + 21)
	hcfg.Days = days
	tr, err = home.Simulate(hcfg)
	if err == nil {
		vcfg := nettrace.DefaultConfig(seed + 2)
		vcfg.Days = days
		vcfg.Activity = tr.Active
		victim, err = nettrace.Simulate(vcfg)
	}
	<-done
	if err != nil {
		return nil, nil, nil, err
	}
	if labErr != nil {
		return nil, nil, nil, labErr
	}
	return lab, victim, tr, nil
}

// netClassifiers bundles the attacker models trained on the lab capture.
// Training is a deterministic pure function of the (memoized) lab capture,
// and both classifiers are read-only after Train, so memoizing the trained
// models is as sound as memoizing the capture itself.
type netClassifiers struct {
	clf   *fingerprint.Classifier
	bayes *fingerprint.BayesClassifier
}

func netClassifierWorld(opts Options) (*netClassifiers, error) {
	return memoWorld(memoKey("netclf", opts), func() (*netClassifiers, error) {
		lab, _, _, err := networkWorld(opts)
		if err != nil {
			return nil, err
		}
		clf, err := fingerprint.Train(lab, time.Hour)
		if err != nil {
			return nil, err
		}
		bayes, err := fingerprint.TrainBayes(lab, time.Hour)
		if err != nil {
			return nil, err
		}
		return &netClassifiers{clf: clf, bayes: bayes}, nil
	})
}

// gatewayDetection is the memoized compromise-detection leg of t9: the
// injected capture, the monitor scan, and the first-alert latencies. All of
// it is a pure function of (seed, quick); consumers only read the map.
type gatewayDetection struct {
	latency map[string]time.Duration
}

func gatewayDetectWorld(opts Options) (*gatewayDetection, error) {
	return memoWorld(memoKey("gwdetect", opts), func() (*gatewayDetection, error) {
		seed := opts.seed()
		_, victim, tr, err := networkWorld(opts)
		if err != nil {
			return nil, err
		}
		mon, err := gateway.LearnProfiles(victim, gateway.DefaultMonitorConfig())
		if err != nil {
			return nil, err
		}
		atkCfg := nettrace.DefaultConfig(seed + 4)
		atkCfg.Days = 3
		atkCfg.Activity = tr.Active
		at := atkCfg.Start.Add(30 * time.Hour)
		atkCfg.Compromises = []nettrace.Compromise{
			{Device: "camera-02", At: at, Kind: nettrace.CompromiseExfil},
			{Device: "smart-plug-03", At: at, Kind: nettrace.CompromiseScan},
			{Device: "bulb-05", At: at, Kind: nettrace.CompromiseBot},
		}
		compromised, err := nettrace.Simulate(atkCfg)
		if err != nil {
			return nil, err
		}
		alerts, err := mon.Scan(compromised)
		if err != nil {
			return nil, err
		}
		latency := map[string]time.Duration{}
		for _, a := range alerts {
			if _, ok := latency[a.Device]; !ok && !a.At.Before(at) {
				latency[a.Device] = a.At.Sub(at)
			}
		}
		return &gatewayDetection{latency: latency}, nil
	})
}

// shapedWorld is one memoized shaping of the victim capture with its cost
// report. The shaped capture is read-only downstream (Identify and
// InferOccupancy only extract features).
type shapedWorld struct {
	cap    *nettrace.Capture
	report *gateway.ShapeReport
}

func gatewayShapeWorld(opts Options, uniform bool) (*shapedWorld, error) {
	name := "gwshape-perdevice"
	if uniform {
		name = "gwshape-uniform"
	}
	return memoWorld(memoKey(name, opts), func() (*shapedWorld, error) {
		_, victim, _, err := networkWorld(opts)
		if err != nil {
			return nil, err
		}
		cfg := gateway.DefaultShapeConfig()
		cfg.Uniform = uniform
		sc, report, err := gateway.Shape(victim, cfg)
		if err != nil {
			return nil, err
		}
		return &shapedWorld{cap: sc, report: report}, nil
	})
}

// TableFingerprint reproduces the §IV passive-monitoring threat: a
// metadata-only observer identifies the devices on a ~40-device LAN and
// infers occupancy from their traffic.
func TableFingerprint(opts Options) (*Report, error) {
	_, victim, tr, err := networkWorld(opts)
	if err != nil {
		return nil, fmt.Errorf("table fingerprint: %w", err)
	}
	nc, err := netClassifierWorld(opts)
	if err != nil {
		return nil, fmt.Errorf("table fingerprint: %w", err)
	}
	id, err := fingerprint.Identify(nc.clf, victim)
	if err != nil {
		return nil, fmt.Errorf("table fingerprint: %w", err)
	}
	idBayes, err := fingerprint.IdentifyBayes(nc.bayes, victim)
	if err != nil {
		return nil, fmt.Errorf("table fingerprint: %w", err)
	}
	occ, err := fingerprint.InferOccupancy(victim, fingerprint.DefaultOccupancyConfig())
	if err != nil {
		return nil, fmt.Errorf("table fingerprint: %w", err)
	}
	ev, err := niom.EvaluateDaytime(tr.Occupancy, occ, 8, 23)
	if err != nil {
		return nil, fmt.Errorf("table fingerprint: %w", err)
	}

	rep := &Report{
		ID:      "t8",
		Title:   fmt.Sprintf("traffic fingerprinting of a %d-device LAN (encrypted-flow metadata only)", len(victim.Devices)),
		Headers: []string{"device class", "recall"},
		Metrics: map[string]float64{
			"device_id_accuracy":       id.Accuracy,
			"device_id_accuracy_bayes": idBayes.Accuracy,
			"occupancy_mcc":            ev.MCC,
			"occupancy_accuracy":       ev.Accuracy,
			"devices_classified":       float64(len(id.Predicted)),
		},
		Notes: []string{
			"occupancy from traffic parallels NIOM on energy: activity-linked devices leak presence",
		},
	}
	for _, class := range nettrace.Classes() {
		if recall, ok := id.PerClass[class]; ok {
			rep.Rows = append(rep.Rows, []string{class.String(), f(recall)})
		}
	}
	rep.Rows = append(rep.Rows,
		[]string{"OVERALL (nearest centroid)", f(id.Accuracy)},
		[]string{"OVERALL (naive bayes)", f(idBayes.Accuracy)},
	)
	return rep, nil
}

// TableGateway reproduces the §IV smart-gateway vision: compromise
// detection latency per behaviour, and the shaping defense's
// privacy/overhead tradeoff against the fingerprinting attack.
func TableGateway(opts Options) (*Report, error) {
	_, victim, tr, err := networkWorld(opts)
	if err != nil {
		return nil, fmt.Errorf("table gateway: %w", err)
	}

	// Compromise detection: the injected capture, the scan, and the
	// resulting first-alert latencies are memoized as one world.
	det, err := gatewayDetectWorld(opts)
	if err != nil {
		return nil, fmt.Errorf("table gateway: %w", err)
	}
	latency := det.latency

	// Shaping tradeoff.
	nc, err := netClassifierWorld(opts)
	if err != nil {
		return nil, fmt.Errorf("table gateway: %w", err)
	}
	clf := nc.clf
	plainID, err := fingerprint.Identify(clf, victim)
	if err != nil {
		return nil, fmt.Errorf("table gateway: %w", err)
	}
	occPlain, err := fingerprint.InferOccupancy(victim, fingerprint.DefaultOccupancyConfig())
	if err != nil {
		return nil, fmt.Errorf("table gateway: %w", err)
	}
	evPlain, err := niom.EvaluateDaytime(tr.Occupancy, occPlain, 8, 23)
	if err != nil {
		return nil, fmt.Errorf("table gateway: %w", err)
	}

	type shaped struct {
		label    string
		id       float64
		occMCC   float64
		overhead float64
	}
	var shapes []shaped
	for _, mode := range []struct {
		label   string
		uniform bool
	}{{"shaped (per-device)", false}, {"shaped (uniform)", true}} {
		sw, err := gatewayShapeWorld(opts, mode.uniform)
		if err != nil {
			return nil, fmt.Errorf("table gateway: %w", err)
		}
		sid, err := fingerprint.Identify(clf, sw.cap)
		if err != nil {
			return nil, fmt.Errorf("table gateway: %w", err)
		}
		occ, err := fingerprint.InferOccupancy(sw.cap, fingerprint.DefaultOccupancyConfig())
		if err != nil {
			return nil, fmt.Errorf("table gateway: %w", err)
		}
		ev, err := niom.EvaluateDaytime(tr.Occupancy, occ, 8, 23)
		if err != nil {
			return nil, fmt.Errorf("table gateway: %w", err)
		}
		shapes = append(shapes, shaped{mode.label, sid.Accuracy, ev.MCC, sw.report.PaddingOverhead})
	}

	rep := &Report{
		ID:      "t9",
		Title:   "smart gateway: compromise quarantine and shaping defense",
		Headers: []string{"measurement", "value"},
		Rows: [][]string{
			{"exfiltration detection latency", fmtLatency(latency["camera-02"])},
			{"scan detection latency", fmtLatency(latency["smart-plug-03"])},
			{"ddos-bot detection latency", fmtLatency(latency["bulb-05"])},
			{"device-ID accuracy, unshaped", f(plainID.Accuracy)},
			{"occupancy MCC, unshaped", f(evPlain.MCC)},
		},
		Metrics: map[string]float64{
			"device_id_unshaped": plainID.Accuracy,
			"occ_mcc_unshaped":   evPlain.MCC,
			"detected_count":     float64(len(latency)),
		},
		Notes: []string{
			"quarantine follows the principle of least privilege the paper argues for",
		},
	}
	for i, s := range shapes {
		rep.Rows = append(rep.Rows,
			[]string{"device-ID accuracy, " + s.label, f(s.id)},
			[]string{"occupancy MCC, " + s.label, f(s.occMCC)},
			[]string{"padding overhead, " + s.label, fmt.Sprintf("%.2fx", s.overhead)},
		)
		key := "per_device"
		if i == 1 {
			key = "uniform"
		}
		rep.Metrics["device_id_"+key] = s.id
		rep.Metrics["occ_mcc_"+key] = s.occMCC
		rep.Metrics["overhead_"+key] = s.overhead
	}
	return rep, nil
}

// fingerprintOccupancy runs the traffic occupancy inference with defaults.
func fingerprintOccupancy(cap *nettrace.Capture) (*timeseries.Series, error) {
	return fingerprint.InferOccupancy(cap, fingerprint.DefaultOccupancyConfig())
}

func fmtLatency(d time.Duration) string {
	if d == 0 {
		return "not detected"
	}
	return d.String()
}
