package knob

import (
	"testing"

	"privmem/internal/home"
)

// TestPropFrontierBounds evaluates a small frontier and checks every
// advertised range: PrivacyGain in [0, 1], non-negative utility error and
// extra energy, and the lambda-0 reference having zero gain and zero cost.
func TestPropFrontierBounds(t *testing.T) {
	cfg := home.DefaultConfig(17)
	cfg.Days = 2
	lambdas := []float64{0, 0.5, 1}
	points, err := Frontier(cfg, lambdas, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(lambdas) {
		t.Fatalf("frontier has %d points for %d lambdas", len(points), len(lambdas))
	}
	for i, p := range points {
		if p.Lambda != lambdas[i] {
			t.Errorf("point %d lambda = %v, want %v", i, p.Lambda, lambdas[i])
		}
		if p.PrivacyGain < 0 || p.PrivacyGain > 1 {
			t.Errorf("lambda %v: privacy gain %.4f outside [0, 1]", p.Lambda, p.PrivacyGain)
		}
		if p.UtilityErr < 0 {
			t.Errorf("lambda %v: utility error %.4f negative", p.Lambda, p.UtilityErr)
		}
		if p.AttackMCC < -1 || p.AttackMCC > 1 {
			t.Errorf("lambda %v: attack MCC %.4f outside [-1, 1]", p.Lambda, p.AttackMCC)
		}
	}
	ref := points[0]
	if ref.PrivacyGain != 0 {
		t.Errorf("lambda 0 reference has privacy gain %.4f, want 0", ref.PrivacyGain)
	}
	if ref.ExtraEnergyWh != 0 {
		t.Errorf("lambda 0 reference has extra energy %.1f Wh, want 0", ref.ExtraEnergyWh)
	}
}
