package experiments

import (
	"fmt"
	"sync"
	"time"

	"privmem/internal/attack/nilm"
	"privmem/internal/attack/niom"
	"privmem/internal/defense/battery"
	"privmem/internal/home"
	"privmem/internal/loads"
	"privmem/internal/meter"
	"privmem/internal/timeseries"
)

// nilmWorkload builds the shared NILM evaluation home: high-rate metering,
// submetered ground truth, and a train/test split. Workloads are memoized
// and shared read-only across experiments and runs; consumers must not
// modify any field.
type nilmWorkload struct {
	step        time.Duration
	metered     *timeseries.Series
	models      []loads.Model
	truthTrain  map[string]*timeseries.Series
	truthTest   map[string]*timeseries.Series
	otherTrain  *timeseries.Series
	testMetered *timeseries.Series
	trace       *home.Trace

	// Derived FHMM artifacts (1-minute resamples and the default-config
	// trained model) are deterministic functions of the fields above, so
	// they are computed once per workload and shared by f2 and a3.
	fhmmOnce sync.Once
	fhmm     *fhmmArtifacts
	fhmmErr  error
}

// fhmmArtifacts are the FHMM baseline's standard inputs plus the
// default-config trained model and its disaggregation of the test window.
type fhmmArtifacts struct {
	train1m map[string]*timeseries.Series
	test1m  map[string]*timeseries.Series
	other1m *timeseries.Series
	testAgg *timeseries.Series
	model   *nilm.FHMM
	out     map[string]*timeseries.Series
}

// defaultFHMM resamples the workload to the FHMM's 1-minute input, trains
// the default-config model, and disaggregates the test window — once; every
// later call returns the cached artifacts. All steps are deterministic
// given the workload, so caching does not change any report byte.
func (w *nilmWorkload) defaultFHMM() (*fhmmArtifacts, error) {
	w.fhmmOnce.Do(func() {
		a := &fhmmArtifacts{
			train1m: map[string]*timeseries.Series{},
			test1m:  map[string]*timeseries.Series{},
		}
		coarse := func(s *timeseries.Series) (*timeseries.Series, error) {
			return s.Resample(time.Minute)
		}
		for name := range w.truthTrain {
			var err error
			if a.train1m[name], err = coarse(w.truthTrain[name]); err != nil {
				w.fhmmErr = err
				return
			}
			if a.test1m[name], err = coarse(w.truthTest[name]); err != nil {
				w.fhmmErr = err
				return
			}
		}
		var err error
		if a.other1m, err = coarse(w.otherTrain); err != nil {
			w.fhmmErr = err
			return
		}
		if a.testAgg, err = coarse(w.testMetered); err != nil {
			w.fhmmErr = err
			return
		}
		if a.model, err = nilm.TrainFHMM(a.train1m, a.other1m, nilm.DefaultFHMMConfig()); err != nil {
			w.fhmmErr = err
			return
		}
		if a.out, err = a.model.Disaggregate(a.testAgg); err != nil {
			w.fhmmErr = err
			return
		}
		w.fhmm = a
	})
	return w.fhmm, w.fhmmErr
}

// buildNILMWorkload returns the memoized shared workload for opts.
func buildNILMWorkload(opts Options) (*nilmWorkload, error) {
	return memoWorld(memoKey("nilm", opts), func() (*nilmWorkload, error) {
		return buildNILMWorkloadUncached(opts)
	})
}

func buildNILMWorkloadUncached(opts Options) (*nilmWorkload, error) {
	seed := opts.seed()
	days, trainDays := 12, 5
	if opts.Quick {
		days, trainDays = 5, 2
	}
	cfg := home.DefaultConfig(seed)
	cfg.Days = days
	cfg.Step = 10 * time.Second
	cfg.IncludeWaterHeater = false // the Figure 2 home heats water with gas
	tr, err := home.Simulate(cfg)
	if err != nil {
		return nil, fmt.Errorf("nilm workload: %w", err)
	}
	mc := meter.DefaultConfig(seed)
	mc.Interval = cfg.Step
	metered, err := meter.Read(mc, tr.Aggregate)
	if err != nil {
		return nil, fmt.Errorf("nilm workload: %w", err)
	}
	w := &nilmWorkload{
		step:       cfg.Step,
		metered:    metered,
		truthTrain: map[string]*timeseries.Series{},
		truthTest:  map[string]*timeseries.Series{},
		trace:      tr,
	}
	split := trainDays * int(24*time.Hour/cfg.Step)
	other := tr.Aggregate.Slice(0, split)
	for _, name := range loads.TrackedDevices() {
		m, err := loads.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("nilm workload: %w", err)
		}
		w.models = append(w.models, m)
		w.truthTrain[name] = tr.Appliances[name].Slice(0, split)
		w.truthTest[name] = tr.Appliances[name].Slice(split, tr.Aggregate.Len())
		other, err = other.Sub(w.truthTrain[name])
		if err != nil {
			return nil, fmt.Errorf("nilm workload: %w", err)
		}
	}
	w.otherTrain = other
	w.testMetered = metered.Slice(split, metered.Len())
	return w, nil
}

// Figure2Disaggregation reproduces Figure 2: disaggregation error factor of
// PowerPlay versus the conventional FHMM NILM baseline for the five tracked
// devices (toaster, fridge, freezer, dryer, HRV).
func Figure2Disaggregation(opts Options) (*Report, error) {
	w, err := buildNILMWorkload(opts)
	if err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}

	pp, err := nilm.PowerPlay(w.testMetered, w.models, nilm.DefaultPowerPlayConfig())
	if err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}
	ppErr, err := nilm.Evaluate(w.truthTest, pp)
	if err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}

	// FHMM consumes its standard 1-minute input; the resamples, training,
	// and decode are cached on the workload.
	art, err := w.defaultFHMM()
	if err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}
	fhErr, err := nilm.Evaluate(art.test1m, art.out)
	if err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}

	fhBy := map[string]nilm.DeviceError{}
	for _, r := range fhErr {
		fhBy[r.Device] = r
	}
	rep := &Report{
		ID:      "f2",
		Title:   "disaggregation error factor: PowerPlay vs conventional FHMM",
		Headers: []string{"device", "PowerPlay", "FHMM", "actual kWh"},
		Metrics: map[string]float64{},
		Notes: []string{
			"paper: PowerPlay below FHMM for every device, gap largest for low-power loads; dryer accurate for both",
		},
	}
	// Present in the paper's order.
	byName := map[string]nilm.DeviceError{}
	for _, r := range ppErr {
		byName[r.Device] = r
	}
	var wins int
	for _, name := range loads.TrackedDevices() {
		p, fhr := byName[name], fhBy[name]
		rep.Rows = append(rep.Rows, []string{
			name, f(p.ErrorFactor), f(fhr.ErrorFactor), f1dp(p.ActualWh / 1000),
		})
		rep.Metrics["powerplay_"+name] = p.ErrorFactor
		rep.Metrics["fhmm_"+name] = fhr.ErrorFactor
		if p.ErrorFactor < fhr.ErrorFactor {
			wins++
		}
	}
	rep.Metrics["powerplay_wins"] = float64(wins)
	return rep, nil
}

// TableBehaviorInference reproduces the §II-A behaviour inferences drawn
// from NILM output: laundry days, breakfast habits, and background
// appliance duty cycles, compared against the simulator's ground-truth
// diary.
func TableBehaviorInference(opts Options) (*Report, error) {
	w, err := buildNILMWorkload(opts)
	if err != nil {
		return nil, fmt.Errorf("table behavior: %w", err)
	}
	pp, err := nilm.PowerPlay(w.metered, w.models, nilm.DefaultPowerPlayConfig())
	if err != nil {
		return nil, fmt.Errorf("table behavior: %w", err)
	}

	onRuns := func(s *timeseries.Series) []time.Time {
		var starts []time.Time
		on := false
		for i, v := range s.Values {
			if v > 50 && !on {
				starts = append(starts, s.TimeAt(i))
				on = true
			} else if v <= 50 && on {
				on = false
			}
		}
		return starts
	}
	weekdayMode := func(ts []time.Time) string {
		counts := map[time.Weekday]int{}
		for _, t := range ts {
			counts[t.Weekday()]++
		}
		best, bestN := time.Sunday, -1
		for d := time.Sunday; d <= time.Saturday; d++ {
			if counts[d] > bestN {
				best, bestN = d, counts[d]
			}
		}
		if bestN <= 0 {
			return "none"
		}
		return best.String()
	}

	// Inferred from the attack's virtual meters.
	infDryer := onRuns(pp[loads.NameDryer])
	infToaster := onRuns(pp[loads.NameToaster])
	infFridge := onRuns(pp[loads.NameFridge])
	// Ground truth from the diary.
	var truDryer, truToaster []time.Time
	for _, ev := range w.trace.Events {
		switch ev.Device {
		case loads.NameDryer:
			truDryer = append(truDryer, ev.Start)
		case loads.NameToaster:
			truToaster = append(truToaster, ev.Start)
		}
	}
	truFridge := onRuns(w.trace.Appliances[loads.NameFridge])
	days := float64(w.metered.Len()) * w.step.Hours() / 24

	rep := &Report{
		ID:      "t2",
		Title:   "behavioural inferences from NILM output vs ground truth",
		Headers: []string{"inference", "from attack", "ground truth"},
		Rows: [][]string{
			{"laundry day (dryer runs)", weekdayMode(infDryer), weekdayMode(truDryer)},
			{"dryer runs per week",
				f1dp(float64(len(infDryer)) / days * 7), f1dp(float64(len(truDryer)) / days * 7)},
			{"breakfasts at home per day (toaster)",
				f1dp(float64(len(infToaster)) / days), f1dp(float64(len(truToaster)) / days)},
			{"fridge cycles per day",
				f1dp(float64(len(infFridge)) / days), f1dp(float64(len(truFridge)) / days)},
		},
		Metrics: map[string]float64{
			"dryer_runs_inferred":   float64(len(infDryer)),
			"dryer_runs_true":       float64(len(truDryer)),
			"toaster_uses_inferred": float64(len(infToaster)),
			"toaster_uses_true":     float64(len(truToaster)),
		},
		Notes: []string{
			"the paper's point: disaggregated loads reveal daily routines (laundry schedule, cooking habits)",
		},
	}
	return rep, nil
}

// TableBatteryDefense reproduces the §III-B battery-defense comparison
// ([26], [27]): NILL and load stepping versus the PowerPlay NILM attack and
// the NIOM occupancy attack, across battery sizes, with cost metrics.
func TableBatteryDefense(opts Options) (*Report, error) {
	w, err := batteryWorld(opts)
	if err != nil {
		return nil, fmt.Errorf("table battery: %w", err)
	}
	load := w.load

	edgeCount := func(s *timeseries.Series) int { return len(s.DetectEdges(100, 3)) }
	mcc := func(s *timeseries.Series) (float64, error) {
		pred, err := niom.DetectThreshold(s, niom.DefaultConfig())
		if err != nil {
			return 0, err
		}
		ev, err := niom.Evaluate(w.occupancy, pred)
		if err != nil {
			return 0, err
		}
		return ev.MCC, nil
	}
	baseMCC, err := mcc(load)
	if err != nil {
		return nil, fmt.Errorf("table battery: %w", err)
	}

	rep := &Report{
		ID:    "t4",
		Title: "battery load-hiding defenses vs NILM/NIOM, by battery size",
		Headers: []string{"defense", "battery", "edges", "NIOM MCC",
			"cycled kWh", "saturated %"},
		Rows: [][]string{{
			"none", "-", fmt.Sprint(edgeCount(load)), f(baseMCC), "0.0", "0.0",
		}},
		Metrics: map[string]float64{"mcc_undefended": baseMCC, "edges_undefended": float64(edgeCount(load))},
		Notes: []string{
			"bigger batteries hide more switching events (fewer residual edges) at higher cycling cost; MCC is already near chance for all sizes",
			"unlike CHPr, the battery is pure cost: it serves no other purpose",
		},
	}
	sizes := []struct {
		label string
		b     battery.Battery
	}{
		{"3.4 kWh / 1.7 kW", battery.Battery{CapacityWh: 3375, MaxChargeW: 1700, MaxDischargeW: 1700, Efficiency: 0.95, InitialSoC: 0.5}},
		{"6.8 kWh / 3.3 kW", battery.Battery{CapacityWh: 6750, MaxChargeW: 3300, MaxDischargeW: 3300, Efficiency: 0.95, InitialSoC: 0.5}},
		{"13.5 kWh / 5 kW", battery.DefaultBattery()},
	}
	for _, sz := range sizes {
		nill, err := battery.NILL(load, sz.b)
		if err != nil {
			return nil, fmt.Errorf("table battery: %w", err)
		}
		stepres, err := battery.Stepping(load, sz.b, 500)
		if err != nil {
			return nil, fmt.Errorf("table battery: %w", err)
		}
		for _, entry := range []struct {
			name string
			res  *battery.Result
		}{{"NILL", nill}, {"stepping-500W", stepres}} {
			m, err := mcc(entry.res.Grid)
			if err != nil {
				return nil, fmt.Errorf("table battery: %w", err)
			}
			rep.Rows = append(rep.Rows, []string{
				entry.name, sz.label,
				fmt.Sprint(edgeCount(entry.res.Grid)), f(m),
				f1dp(entry.res.ThroughputWh / 1000),
				f1dp(100 * float64(entry.res.SaturatedSteps) / float64(load.Len())),
			})
		}
	}
	last, err := battery.NILL(load, battery.DefaultBattery())
	if err != nil {
		return nil, fmt.Errorf("table battery: %w", err)
	}
	m, err := mcc(last.Grid)
	if err != nil {
		return nil, fmt.Errorf("table battery: %w", err)
	}
	rep.Metrics["mcc_nill_large"] = m
	rep.Metrics["edges_nill_large"] = float64(edgeCount(last.Grid))
	return rep, nil
}

// batteryWorkload is the memoized t4 world: the home's metered load and
// the occupancy ground truth the defense is scored against. Shared
// read-only (battery defenses allocate their own grid series).
type batteryWorkload struct {
	load      *timeseries.Series
	occupancy *timeseries.Series
}

// batteryWorld builds (or returns the memoized) battery-defense world.
func batteryWorld(opts Options) (*batteryWorkload, error) {
	return memoWorld(memoKey("battery", opts), func() (*batteryWorkload, error) {
		seed := opts.seed()
		days := 7
		if opts.Quick {
			days = 3
		}
		cfg := home.DefaultConfig(seed + 7)
		cfg.Days = days
		tr, err := home.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		load, err := meter.Read(meter.DefaultConfig(seed), tr.Aggregate)
		if err != nil {
			return nil, err
		}
		return &batteryWorkload{load: load, occupancy: tr.Occupancy}, nil
	})
}
