// Package floatorder flags floating-point accumulation whose summation
// order depends on goroutine scheduling: `sum += v` into a variable
// declared outside a `go func() {...}` literal, or inside a `range` over a
// channel (values arrive in send order, which is scheduling order when the
// senders are concurrent workers). Float addition is not associative, so
// even with a mutex making the accumulation race-free, the result's low
// bits differ run to run — exactly the class of bug that breaks this
// repo's bit-identical (seed,id) contract in cross-worker merge paths.
// The fix is the repo's standard partition-then-reduce shape: accumulate
// per worker (or store into an indexed slot) and reduce sequentially in a
// fixed order.
//
// Map-range float accumulation is the maporder analyzer's half of the same
// contract; this package covers the goroutine half.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"privmem/internal/analysis"
)

// Analyzer is the floatorder check.
var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc:  "flag float accumulation in goroutine-scheduling or channel-arrival order",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
					checkAccum(pass, lit.Body, lit.Pos(),
						"goroutine-scheduling order (go statement)")
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[stmt.X]
				if !ok {
					return true
				}
				if _, isChan := types.Unalias(tv.Type).Underlying().(*types.Chan); isChan {
					checkAccum(pass, stmt.Body, stmt.Pos(), "channel-arrival order")
				}
			}
			return true
		})
	}
	return nil
}

// checkAccum reports op-assign float accumulation inside body into
// variables declared before boundary (i.e. outside the concurrent region).
func checkAccum(pass *analysis.Pass, body *ast.BlockStmt, boundary token.Pos, how string) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		default:
			return true
		}
		obj := lhsObject(info, as.Lhs[0])
		if obj == nil || obj.Pos() >= boundary {
			return true // accumulator local to the goroutine / loop body
		}
		basic, ok := types.Unalias(obj.Type()).Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			return true // integer accumulation is associative; arrival order is fine
		}
		pass.Reportf(as.Pos(),
			"floating-point accumulation into %s in %s: float addition is not associative, so the result's bits vary run to run; accumulate per worker and reduce in fixed order", objName(as.Lhs[0]), how)
		return true
	})
}

// lhsObject resolves the variable (or field) an accumulation target refers
// to. Indexed targets (results[i] += v) resolve to the slice variable —
// still order-dependent if the same slot is shared, but an indexed slot per
// worker is the recommended fix, so indexing is treated as partitioned and
// skipped.
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			return obj
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	case *ast.StarExpr:
		return lhsObject(info, x.X)
	}
	return nil
}

func objName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return objName(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return objName(x.X)
	}
	return "accumulator"
}
