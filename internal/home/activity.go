package home

import (
	"fmt"
	"math/rand"
	"time"

	"privmem/internal/loads"
	"privmem/internal/timeseries"
)

// activityScheduler turns occupant activity into appliance events.
type activityScheduler struct {
	cfg     Config
	rng     *rand.Rand
	catalog map[string]loads.Model
}

func newActivityScheduler(cfg Config, rng *rand.Rand, catalog map[string]loads.Model) *activityScheduler {
	return &activityScheduler{cfg: cfg, rng: rng, catalog: catalog}
}

// deviceWeight returns the relative likelihood that an interactive event at
// local hour h uses the given device, encoding routine structure (breakfast
// appliances in the morning, TV and lighting at night, ...).
func deviceWeight(device string, h int) float64 {
	morning := h >= 6 && h < 10
	midday := h >= 10 && h < 16
	evening := h >= 16 && h < 21
	night := h >= 21 || h < 6
	switch device {
	case loads.NameToaster, loads.NameKettle:
		if morning {
			return 3
		}
		if midday {
			return 0.5
		}
		return 0.2
	case loads.NameMicrowave:
		if morning || evening {
			return 2
		}
		return 0.8
	case loads.NameOven:
		if evening {
			return 1.5
		}
		if midday {
			return 0.4
		}
		return 0.05
	case loads.NameTV:
		if evening || night {
			return 2.5
		}
		return 0.4
	case loads.NameLighting:
		if evening || night {
			return 3
		}
		if morning {
			return 1
		}
		return 0.2
	case loads.NameDishwasher:
		if evening {
			return 0.8
		}
		return 0.1
	default:
		return 1
	}
}

// pickDevice samples an interactive device for an event at hour h.
func (s *activityScheduler) pickDevice(h int) string {
	var total float64
	for _, d := range s.cfg.InteractiveDevices {
		total += deviceWeight(d, h)
	}
	r := s.rng.Float64() * total
	for _, d := range s.cfg.InteractiveDevices {
		r -= deviceWeight(d, h)
		if r <= 0 {
			return d
		}
	}
	return s.cfg.InteractiveDevices[len(s.cfg.InteractiveDevices)-1]
}

// generate produces the interactive appliance event diary given the active
// (home and awake) indicator series.
func (s *activityScheduler) generate(active *timeseries.Series) ([]Event, error) {
	if len(s.cfg.InteractiveDevices) == 0 {
		return nil, nil
	}
	for _, d := range s.cfg.InteractiveDevices {
		if _, ok := s.catalog[d]; !ok {
			return nil, fmt.Errorf("unknown interactive device %q", d)
		}
	}
	var events []Event
	busyUntil := make(map[string]time.Time)
	perStep := s.cfg.ActivityRatePerHour * s.cfg.Step.Hours()

	for i := 0; i < active.Len(); i++ {
		if active.Values[i] < 0.5 || s.rng.Float64() >= perStep {
			continue
		}
		t := active.TimeAt(i)
		dev := s.pickDevice(t.Hour())
		if t.Before(busyUntil[dev]) {
			continue
		}
		model := s.catalog[dev]
		dur := jitterDuration(s.rng, model.OnDuration, model.DurationJitter)
		events = append(events, Event{Device: dev, Start: t, Duration: dur})
		busyUntil[dev] = t.Add(dur)
	}

	events = append(events, s.laundryEvents(active)...)
	return events, nil
}

// laundryEvents schedules washer-then-dryer runs on the configured laundry
// days, at a random active time.
func (s *activityScheduler) laundryEvents(active *timeseries.Series) []Event {
	var events []Event
	washer, haveWasher := s.catalog[loads.NameWasher]
	dryer, haveDryer := s.catalog[loads.NameDryer]
	if !haveWasher || !haveDryer {
		return nil
	}
	for d := 0; d < s.cfg.Days; d++ {
		dayStart := s.cfg.Start.Add(time.Duration(d) * 24 * time.Hour)
		if !containsWeekday(s.cfg.LaundryDays, dayStart.Weekday()) {
			continue
		}
		// Pick an active minute between 9:00 and 19:00.
		var candidates []time.Time
		for h := 9.0; h < 19; h += 0.25 {
			t := hourOffset(dayStart, h)
			if active.At(t) >= 0.5 {
				candidates = append(candidates, t)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		start := candidates[s.rng.Intn(len(candidates))]
		wDur := jitterDuration(s.rng, washer.OnDuration, washer.DurationJitter)
		dDur := jitterDuration(s.rng, dryer.OnDuration, dryer.DurationJitter)
		events = append(events,
			Event{Device: loads.NameWasher, Start: start, Duration: wDur},
			Event{Device: loads.NameDryer, Start: start.Add(wDur + 5*time.Minute), Duration: dDur},
		)
	}
	return events
}

func containsWeekday(days []time.Weekday, d time.Weekday) bool {
	for _, x := range days {
		if x == d {
			return true
		}
	}
	return false
}

func jitterDuration(rng *rand.Rand, d time.Duration, jitter float64) time.Duration {
	if jitter <= 0 {
		return d
	}
	f := 1 + jitter*(2*rng.Float64()-1)
	out := time.Duration(float64(d) * f)
	if out < time.Minute {
		out = time.Minute
	}
	return out
}

// generateWaterDraws produces hot-water draws from occupant routines:
// a morning shower per present occupant, plus evening kitchen draws.
func generateWaterDraws(cfg Config, rng *rand.Rand, occ *occupantModel) []WaterDraw {
	var draws []WaterDraw
	for d := 0; d < cfg.Days; d++ {
		dayStart := cfg.Start.Add(time.Duration(d) * 24 * time.Hour)
		wake := occ.wakeOn(d)
		for o := 0; o < cfg.Occupants; o++ {
			showerAt := hourOffset(dayStart, wake+rng.Float64()*1.5)
			if occ.presentAt(o, showerAt) {
				draws = append(draws, WaterDraw{
					Time:   showerAt,
					Liters: 35 + 25*rng.Float64(),
				})
			}
		}
		// Evening kitchen/cleanup draw when anyone is home.
		evening := hourOffset(dayStart, 18+2*rng.Float64())
		if occ.anyoneHome(evening) {
			draws = append(draws, WaterDraw{Time: evening, Liters: 10 + 15*rng.Float64()})
		}
	}
	return draws
}
