package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{},                           // neither -addr nor -selfserve
		{"-addr", "x", "-selfserve"}, // both
		{"-addr", "x", "-rps", "0"},
		{"-addr", "x", "-zipf-s", "1"},
		{"-addr", "x", "-seeds", "0"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2\nstderr: %s", args, code, errOut.String())
		}
	}
}

// TestRunAgainstFakeDaemon drives a full load run against an instant fake
// memoird and checks the benchjson-consumable output line.
func TestRunAgainstFakeDaemon(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !strings.HasPrefix(r.URL.Path, "/v1/report/") {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("report body\n")) //lint:allow errpath test fake
	}))
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-rps", "400", "-duration", "250ms",
		"-experiments", "f1,t6", "-seeds", "3", "-warm",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d\nstderr: %s", code, errOut.String())
	}
	line := strings.TrimSpace(out.String())
	if !strings.HasPrefix(line, "BenchmarkMemoirLoad") {
		t.Fatalf("output is not a benchmark line: %q", line)
	}
	for _, col := range []string{"ns/op", "p50-us", "p95-us", "p99-us", "rps", "errors"} {
		if !strings.Contains(line, col) {
			t.Errorf("output missing %s column: %q", col, line)
		}
	}
	// 400 rps * 250ms = 100 scheduled requests, plus 6 warm probes.
	if got := hits.Load(); got < 100 {
		t.Errorf("fake daemon saw %d requests, want >= 100", got)
	}
	if !strings.Contains(line, "\t0 errors") {
		t.Errorf("errors column non-zero against healthy fake: %q", line)
	}
}

// TestRunCountsErrors points the generator at a daemon that always 500s:
// the run completes (open loop never wedges) and exits 1 with every request
// counted as an error.
func TestRunCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	var out, errOut bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-rps", "200", "-duration", "100ms"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("all-errors run = %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "failed") {
		t.Errorf("stderr missing failure notice: %s", errOut.String())
	}
}
