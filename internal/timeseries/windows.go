package timeseries

import (
	"fmt"
	"math"
	"time"
)

// WindowStat summarizes one analysis window of a series. NIOM-style
// detectors classify each window from these statistics.
type WindowStat struct {
	// Start is the timestamp of the window's first sample.
	Start time.Time
	// N is the number of samples in the window.
	N int
	// Mean is the window's arithmetic mean.
	Mean float64
	// Std is the window's population standard deviation.
	Std float64
	// Min and Max bound the window's samples.
	Min, Max float64
	// Range is Max - Min, a cheap burstiness proxy.
	Range float64
	// AbsDiffMean is the mean absolute first difference inside the window,
	// the burstiness measure used by threshold NIOM.
	AbsDiffMean float64
	// MaxAbsDiff is the largest absolute first difference inside the
	// window: the magnitude of its biggest switching event.
	MaxAbsDiff float64
}

// Windows partitions the series into consecutive non-overlapping windows of
// the given duration and returns one WindowStat per full window. A window
// duration that is not a multiple of the step is an error.
//
// When the width does not divide the series length, the trailing partial
// window — the last Len() mod (width/Step) samples, fewer than one full
// window — is dropped: window statistics are only meaningful over full
// windows, and a shortened final window would bias detector thresholds.
// Concatenated in order, the returned windows therefore reconstruct the
// statistics of exactly the first len(result)*(width/Step) samples (the
// partition law enforced by invariant.WindowsPartition).
func (s *Series) Windows(width time.Duration) ([]WindowStat, error) {
	if width <= 0 || width%s.Step != 0 {
		return nil, fmt.Errorf("windows: width %v not a positive multiple of step %v: %w",
			width, s.Step, ErrStepMismatch)
	}
	k := int(width / s.Step)
	n := len(s.Values) / k
	out := make([]WindowStat, 0, n)
	for w := 0; w < n; w++ {
		vals := s.Values[w*k : (w+1)*k]
		out = append(out, statOf(s.TimeAt(w*k), vals))
	}
	return out, nil
}

func statOf(start time.Time, vals []float64) WindowStat {
	st := WindowStat{Start: start, N: len(vals)}
	if len(vals) == 0 {
		return st
	}
	st.Min, st.Max = vals[0], vals[0]
	var sum float64
	for _, v := range vals {
		sum += v
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
	}
	st.Mean = sum / float64(len(vals))
	var ss, ad float64
	for i, v := range vals {
		d := v - st.Mean
		ss += d * d
		if i > 0 {
			step := math.Abs(v - vals[i-1])
			ad += step
			st.MaxAbsDiff = math.Max(st.MaxAbsDiff, step)
		}
	}
	st.Std = math.Sqrt(ss / float64(len(vals)))
	if len(vals) > 1 {
		st.AbsDiffMean = ad / float64(len(vals)-1)
	}
	st.Range = st.Max - st.Min
	return st
}

// Edge is a step change detected in a series: the aggregate power rose or
// fell by Delta watts at sample Index. PowerPlay's virtual power meters are
// driven by edges.
type Edge struct {
	// Index is the sample at which the new level begins.
	Index int
	// Time is the timestamp of Index.
	Time time.Time
	// Delta is the signed magnitude of the step (after minus before).
	Delta float64
}

// DetectEdges finds step changes with |delta| >= threshold. A step is
// measured between the steady levels before and after the change: each level
// is the median of up to pad samples on that side, which suppresses spikes
// shorter than the pad. pad must be >= 1.
func (s *Series) DetectEdges(threshold float64, pad int) []Edge {
	if pad < 1 {
		pad = 1
	}
	var edges []Edge
	n := len(s.Values)
	// One pooled scratch row serves every median in the scan; the old
	// per-candidate copy allocated twice per threshold crossing.
	bp := scratchFloats.Get().(*[]float64)
	for i := 1; i < n; i++ {
		d := s.Values[i] - s.Values[i-1]
		if math.Abs(d) < threshold {
			continue
		}
		before := medianOf(s.Values[max(0, i-pad):i], bp)
		after := medianOf(s.Values[i:min(n, i+pad)], bp)
		delta := after - before
		if math.Abs(delta) < threshold {
			continue
		}
		edges = append(edges, Edge{Index: i, Time: s.TimeAt(i), Delta: delta})
	}
	scratchFloats.Put(bp)
	return edges
}

// medianOf computes the median of vals using *scratch as working space,
// growing it as needed.
func medianOf(vals []float64, scratch *[]float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	tmp := append((*scratch)[:0], vals...)
	*scratch = tmp
	// Insertion sort: pads are tiny.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	m := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[m]
	}
	return (tmp[m-1] + tmp[m]) / 2
}

// Binary converts the series to a 0/1 indicator using threshold: samples
// >= threshold map to 1. Occupancy ground truth and detector outputs use
// binary series.
func (s *Series) Binary(threshold float64) *Series {
	out := s.Clone()
	for i, v := range out.Values {
		if v >= threshold {
			out.Values[i] = 1
		} else {
			out.Values[i] = 0
		}
	}
	return out
}
