// Property tests driving the invariant checkers over randomized series.
// They live in the external test package because internal/invariant imports
// timeseries.
package timeseries_test

import (
	"math/rand"
	"testing"
	"time"

	"privmem/internal/invariant"
	"privmem/internal/timeseries"
)

// TestPropEnergyConservedUnderResample: coarsening to any multiple of the
// step — including factors that leave a partial tail bucket — and refining
// to any divisor conserve Energy() exactly.
func TestPropEnergyConservedUnderResample(t *testing.T) {
	invariant.Check(t, 42, 60, func(rng *rand.Rand, i int) error {
		s := invariant.RandomSeries(rng, invariant.SeriesSpec{
			MinLen: 1, MaxLen: 500,
			Steps: []time.Duration{time.Second, 20 * time.Second, time.Minute, 5 * time.Minute},
		})
		// Coarsen by a random factor (often not dividing the length).
		k := invariant.CoarsenFactors(rng, 40)
		if err := invariant.EnergyConservedUnderResample(s, time.Duration(k)*s.Step); err != nil {
			return err
		}
		// Refine by a divisor of the step.
		divisors := []time.Duration{}
		for _, d := range []time.Duration{time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second} {
			if d < s.Step && s.Step%d == 0 {
				divisors = append(divisors, d)
			}
		}
		if len(divisors) == 0 {
			return nil
		}
		return invariant.EnergyConservedUnderResample(s, divisors[rng.Intn(len(divisors))])
	})
}

// TestPropIndexTimeRoundTrip: every instant inside a sample's half-open
// interval maps back to that sample, and pre-start instants map negative.
func TestPropIndexTimeRoundTrip(t *testing.T) {
	invariant.Check(t, 43, 40, func(rng *rand.Rand, i int) error {
		s := invariant.RandomSeries(rng, invariant.SeriesSpec{MinLen: 1, MaxLen: 200})
		return invariant.IndexTimeRoundTrip(s)
	})
}

// TestPropWindowsPartition: concatenated window stats reconstruct the
// whole-series mean/min/max over the covered prefix, and a width that does
// not divide the length drops only the trailing partial window.
func TestPropWindowsPartition(t *testing.T) {
	invariant.Check(t, 44, 60, func(rng *rand.Rand, i int) error {
		s := invariant.RandomSeries(rng, invariant.SeriesSpec{
			MinLen: 1, MaxLen: 400,
			Steps: []time.Duration{time.Second, time.Minute, 15 * time.Minute},
			MinV:  -2000, MaxV: 6000, // windows must partition negative (net-metered) traces too
		})
		k := invariant.CoarsenFactors(rng, 50)
		return invariant.WindowsPartition(s, time.Duration(k)*s.Step)
	})
}

// TestWindowsDropsOnlyTail pins the documented drop rule on a hand-built
// case: 10 samples at width 3 yields 3 windows covering samples 0..8, and
// sample 9 — only sample 9 — is dropped.
func TestWindowsDropsOnlyTail(t *testing.T) {
	s := timeseries.MustNew(time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC), time.Minute, 10)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	stats, err := s.Windows(3 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("windows = %d, want 3", len(stats))
	}
	// The dropped tail is exactly the last sample: max over windows is 8.
	if got := stats[len(stats)-1].Max; got != 8 {
		t.Errorf("last window max = %v, want 8 (sample 9 must be dropped)", got)
	}
	if err := invariant.WindowsPartition(s, 3*time.Minute); err != nil {
		t.Error(err)
	}
}
