package solarsim

import (
	"errors"
	"testing"
	"time"

	"privmem/internal/sun"
	"privmem/internal/weather"
)

var simStart = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func southSite() Site {
	return Site{
		Name: "test", Lat: 42.4, Lon: -72.5, CapacityW: 5000,
		TiltDeg: 25, AzimuthDeg: 180, NoiseStd: 0.01,
	}
}

func TestGenerateShape(t *testing.T) {
	gen, err := Generate(southSite(), nil, simStart, 2, time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() != 2*1440 {
		t.Fatalf("len = %d", gen.Len())
	}
	if gen.Min() < 0 {
		t.Error("negative generation")
	}
	peak := gen.Max()
	if peak < 2000 || peak > 7000 {
		t.Errorf("peak = %.0f W for a 5 kW array", peak)
	}
	// No generation at local night (~06:00 UTC is ~01:00 local).
	if v := gen.At(simStart.Add(6 * time.Hour)); v != 0 {
		t.Errorf("night generation = %v", v)
	}
	// Peak should occur near solar noon.
	dt, err := sun.RiseSet(simStart, 42.4, -72.5)
	if err != nil {
		t.Fatal(err)
	}
	noonIdx := int(dt.NoonMin)
	best := 0
	for i := 0; i < 1440; i++ {
		if gen.Values[i] > gen.Values[best] {
			best = i
		}
	}
	if abs(best-noonIdx) > 45 {
		t.Errorf("peak at minute %d, solar noon at %d", best, noonIdx)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestGenerateProductionTracksSunriseSunset(t *testing.T) {
	// At this longitude the solar day straddles UTC midnight, so examine
	// the production run containing day 0's solar noon within a 2-day
	// trace rather than trace-wide first/last samples.
	gen, err := Generate(southSite(), nil, simStart, 2, time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := sun.RiseSet(simStart, 42.4, -72.5)
	if err != nil {
		t.Fatal(err)
	}
	noon := int(dt.NoonMin)
	if gen.Values[noon] <= 1 {
		t.Fatal("no production at solar noon")
	}
	first := noon
	for first > 0 && gen.Values[first-1] > 1 {
		first--
	}
	last := noon
	for last+1 < gen.Len() && gen.Values[last+1] > 1 {
		last++
	}
	// Production begins within ~30 min of sunrise (diffuse light) and ends
	// within ~30 min of sunset.
	if abs(first-int(dt.SunriseMin)) > 30 {
		t.Errorf("production start %d vs sunrise %.0f", first, dt.SunriseMin)
	}
	if abs(last-int(dt.SunsetMin)) > 30 {
		t.Errorf("production end %d vs sunset %.0f", last, dt.SunsetMin)
	}
}

func TestCloudReducesGeneration(t *testing.T) {
	cfg := weather.DefaultFieldConfig(3)
	cfg.MeanCloud = 0.7
	field, err := weather.NewField(cfg, simStart, 24*5, 42)
	if err != nil {
		t.Fatal(err)
	}
	clear, err := Generate(southSite(), nil, simStart, 5, time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	cloudy, err := Generate(southSite(), field, simStart, 5, time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cloudy.Energy() >= clear.Energy()*0.8 {
		t.Errorf("cloud barely reduced energy: %.0f vs %.0f Wh",
			cloudy.Energy(), clear.Energy())
	}
}

func TestEastFacingShiftsPeakEarlier(t *testing.T) {
	east := southSite()
	east.AzimuthDeg = 120
	sGen, err := Generate(southSite(), nil, simStart, 1, time.Minute, 5)
	if err != nil {
		t.Fatal(err)
	}
	eGen, err := Generate(east, nil, simStart, 1, time.Minute, 5)
	if err != nil {
		t.Fatal(err)
	}
	peakIdx := func(g []float64) int {
		best := 0
		for i, v := range g {
			if v > g[best] {
				best = i
			}
			_ = v
		}
		return best
	}
	if pe, ps := peakIdx(eGen.Values), peakIdx(sGen.Values); pe >= ps-15 {
		t.Errorf("east-facing peak %d not earlier than south-facing %d", pe, ps)
	}
}

func TestInverterClipping(t *testing.T) {
	s := southSite()
	s.InverterLimitW = 2000
	s.NoiseStd = 0
	gen, err := Generate(s, nil, simStart, 1, time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Max() > 2000 {
		t.Errorf("max %v exceeds inverter limit", gen.Max())
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := southSite()
	bad.CapacityW = 0
	if _, err := Generate(bad, nil, simStart, 1, time.Minute, 1); !errors.Is(err, ErrBadSite) {
		t.Errorf("capacity error = %v", err)
	}
	bad = southSite()
	bad.Lat = 80
	if _, err := Generate(bad, nil, simStart, 1, time.Minute, 1); !errors.Is(err, ErrBadSite) {
		t.Errorf("latitude error = %v", err)
	}
	if _, err := Generate(southSite(), nil, simStart, 0, time.Minute, 1); !errors.Is(err, ErrBadSite) {
		t.Errorf("days error = %v", err)
	}
}

func TestFleetProperties(t *testing.T) {
	sites := Fleet(7)
	if len(sites) != 10 {
		t.Fatalf("fleet size = %d", len(sites))
	}
	var skewed int
	for _, s := range sites {
		if err := s.validate(); err != nil {
			t.Errorf("fleet site invalid: %v", err)
		}
		if s.AzimuthDeg < 160 || s.AzimuthDeg > 200 {
			skewed++
		}
	}
	if skewed != 3 {
		t.Errorf("fleet has %d skewed sites, want 3 (Figure 5 outliers)", skewed)
	}
	// Deterministic.
	again := Fleet(7)
	for i := range sites {
		if sites[i] != again[i] {
			t.Fatal("Fleet not deterministic")
		}
	}
}
