package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// checkSrc parses and type-checks src as a single-file package and wraps it
// as an analyzable Package.
func checkSrc(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{fset: fset, checked: map[string]*checkedPackage{}}
	ld.std = importer.ForCompiler(fset, "source", nil)
	tpkg, info, err := ld.typecheck(path, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: path, Dir: ".", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

const engineSrc = `package engine

import (
	"math/rand"
	"os"
	"time"
)

var counter int

func clock() time.Time { return time.Now() }

func viaClock() time.Time { return clock() }

func draws() int { return rand.Intn(6) }

func seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

func readsEnv() string { return os.Getenv("HOME") }

func readsFile() ([]byte, error) { return os.ReadFile("x") }

func writesGlobal() { counter++ }

func writesAliased() {
	c := &counter
	*c = 5
}

//lint:trust vouched intentionally impure for the test
func vouched() time.Time { return time.Now() }

func viaVouched() time.Time { return vouched() }

func allowedSink() time.Time {
	return time.Now() //lint:allow deterministic test fixture says this is fine
}

func viaClosure() {
	helper(func() { _ = time.Now() })
}

func helper(f func()) { f() }

func mutualA(n int) int {
	if n <= 0 {
		return rand.Intn(2)
	}
	return mutualB(n - 1)
}

func mutualB(n int) int { return mutualA(n) }

func mapLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func pure(x int) int { return x * 2 }
`

func summarizeEngine(t *testing.T) *Summaries {
	t.Helper()
	pkg := checkSrc(t, "engine", engineSrc)
	return Summarize(BuildCallGraph([]*Package{pkg}))
}

func engineKey(name string) FuncKey { return FuncKey("engine." + name) }

func TestSummaryOwnAndTransitiveEffects(t *testing.T) {
	s := summarizeEngine(t)
	cases := []struct {
		fn     string
		effect Effect
		want   bool
	}{
		{"clock", EffectWallClock, true},
		{"viaClock", EffectWallClock, true}, // propagated one level
		{"draws", EffectGlobalRand, true},
		{"seeded", EffectGlobalRand, false}, // explicit source is allowed
		{"readsEnv", EffectEnvRead, true},
		{"readsFile", EffectFSRead, true},
		{"writesGlobal", EffectGlobalWrite, true},
		{"writesAliased", EffectGlobalWrite, true}, // one-level alias tracked
		{"vouched", EffectWallClock, false},        // trusted: summary forced empty
		{"viaVouched", EffectWallClock, false},     // trust cuts propagation
		{"allowedSink", EffectWallClock, false},    // //lint:allow at the sink
		{"viaClosure", EffectWallClock, true},      // FuncLit body attributed to encloser
		{"mutualA", EffectGlobalRand, true},        // SCC fixpoint
		{"mutualB", EffectGlobalRand, true},
		{"mapLeak", EffectMapOrder, true},
		{"pure", EffectWallClock, false},
	}
	for _, c := range cases {
		sum, ok := s.ByKey[engineKey(c.fn)]
		if !ok {
			t.Fatalf("no summary for %s", c.fn)
		}
		if got := sum.Transitive.Has(c.effect); got != c.want {
			t.Errorf("%s reaches %s = %v, want %v (transitive=%s)", c.fn, c.effect, got, c.want, sum.Transitive)
		}
	}
	if sum := s.ByKey[engineKey("vouched")]; !sum.Trusted || sum.TrustReason == "" {
		t.Errorf("vouched: Trusted=%v reason=%q, want trusted with a reason", sum.Trusted, sum.TrustReason)
	}
	if len(s.Malformed) != 0 {
		t.Errorf("unexpected malformed directives: %v", s.Malformed)
	}
}

func TestSummaryWitnessPath(t *testing.T) {
	s := summarizeEngine(t)
	chain, sink := s.Path(engineKey("viaClock"), EffectWallClock)
	if sink == nil {
		t.Fatal("no witness path from viaClock to the wall-clock sink")
	}
	want := []FuncKey{engineKey("viaClock"), engineKey("clock")}
	if len(chain) != len(want) || chain[0] != want[0] || chain[1] != want[1] {
		t.Errorf("witness chain = %v, want %v", chain, want)
	}
	if !strings.Contains(sink.Desc, "time.Now") {
		t.Errorf("sink desc = %q, want the time.Now mention", sink.Desc)
	}
	if chain, _ := s.Path(engineKey("pure"), EffectWallClock); chain != nil {
		t.Errorf("pure has a witness path: %v", chain)
	}
}

func TestCertifyReportsAtSinkWithChain(t *testing.T) {
	s := summarizeEngine(t)
	diags := Certify(s, []FuncKey{engineKey("viaClock"), engineKey("clock")})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (deduped by sink): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "deterministic" {
		t.Errorf("analyzer = %q, want deterministic", d.Analyzer)
	}
	if !strings.Contains(d.Message, "wall-clock") || !strings.Contains(d.Message, "viaClock -> ") {
		t.Errorf("message = %q, want the effect and a witness chain", d.Message)
	}
	if clean := Certify(s, []FuncKey{engineKey("pure"), engineKey("seeded"), FuncKey("engine.nonexistent")}); len(clean) != 0 {
		t.Errorf("pure roots certified with findings: %v", clean)
	}
}

func TestTrustDirectiveValidation(t *testing.T) {
	const src = `package trustbad

//lint:trust wrongname because the names disagree
func actual() {}

//lint:trust noreason
func noreason() {}

func carrier() {
	//lint:trust stray directives outside doc comments trust nothing
	_ = 1
}
`
	pkg := checkSrc(t, "trustbad", src)
	s := Summarize(BuildCallGraph([]*Package{pkg}))
	if len(s.Malformed) != 3 {
		t.Fatalf("got %d malformed directives, want 3: %v", len(s.Malformed), s.Malformed)
	}
	var wrongName, missingReason, stray bool
	for _, d := range s.Malformed {
		if d.Analyzer != "linttrust" {
			t.Errorf("malformed directive reported as %q, want linttrust", d.Analyzer)
		}
		switch {
		case strings.Contains(d.Message, "names \"wrongname\""):
			wrongName = true
		case strings.Contains(d.Message, "needs the trusted function's name"):
			missingReason = true
		case strings.Contains(d.Message, "must sit in the doc comment"):
			stray = true
		}
	}
	if !wrongName || !missingReason || !stray {
		t.Errorf("wrongName=%v missingReason=%v stray=%v, want all three shapes reported: %v",
			wrongName, missingReason, stray, s.Malformed)
	}
}

func TestCheckMapOrderShapes(t *testing.T) {
	const src = `package maps

import (
	"fmt"
	"sort"
	"strings"
)

func flaggedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func cleanSortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func flaggedSink(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k)
	}
}

func flaggedPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func flaggedFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

func cleanLocalAppend(m map[string]map[string]int) {
	for _, inner := range m {
		var local []string
		for k := range inner {
			local = append(local, k)
		}
		sort.Strings(local)
		_ = local
	}
}
`
	pkg := checkSrc(t, "maps", src)
	perFunc := map[string]int{}
	for _, decl := range pkg.Files[0].Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		CheckMapOrder(pkg.Info, fd.Body, func(pos token.Pos, format string, args ...any) {
			perFunc[fd.Name.Name]++
		})
	}
	want := map[string]int{
		"flaggedAppend": 1, "cleanSortedAfter": 0, "flaggedSink": 1,
		"flaggedPrint": 1, "flaggedFloat": 1, "cleanLocalAppend": 0,
	}
	for fn, n := range want {
		if perFunc[fn] != n {
			t.Errorf("%s: %d findings, want %d", fn, perFunc[fn], n)
		}
	}
}
