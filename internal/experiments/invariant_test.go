package experiments_test

import (
	"testing"

	"privmem/internal/experiments"
	"privmem/internal/invariant/suite"
)

// suiteIDs is a small, cheap cross-section for determinism checks: a figure
// generator, an attack table, and the zk-billing table.
var suiteIDs = []string{"f1", "t1", "t6"}

// TestPropRunAllDeterministic checks the suite-determinism law across worker
// counts and seeds: RunAll must render bit-identical reports whether the
// suite runs sequentially or spread over a pool.
func TestPropRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("suite determinism sweep is not short")
	}
	for _, seed := range []int64{0, 1, 42} {
		opts := experiments.Options{Seed: seed, SeedSet: true, Quick: true}
		if err := suite.RunAllDeterministic(suiteIDs, opts, []int{1, 2, 5}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPropRunAllMemoTransparent checks the memo-transparency law: the
// shared-world memo must not change a single rendered byte, whether the
// suite runs sequentially or on a pool.
func TestPropRunAllMemoTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("memo transparency sweep is not short")
	}
	for _, seed := range []int64{0, 42} {
		opts := experiments.Options{Seed: seed, SeedSet: true, Quick: true}
		if err := suite.RunAllMemoTransparent(suiteIDs, opts, []int{1, 3}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPropArmsRaceLaws checks the ar1 structural laws — gateway-family
// defense-cost monotonicity and the attacker-advantage bound (a gen-N
// attacker is never worse than gen-0 on gen-N defended traffic).
func TestPropArmsRaceLaws(t *testing.T) {
	if testing.Short() {
		t.Skip("arms race sweep is not short")
	}
	for _, seed := range []int64{0, 42} {
		opts := experiments.Options{Seed: seed, SeedSet: true, Quick: true}
		if err := suite.ArmsRaceLaws(opts); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPropArmsRaceDeterministic checks that the arms-race matrix renders
// bit-identically across worker counts and with the world memo on or off:
// the defended captures, the retrained adversaries, and the STP coin flips
// are all pure functions of (seed, quick).
func TestPropArmsRaceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("arms race sweep is not short")
	}
	ids := []string{"ar1", "t8"}
	opts := experiments.Options{Seed: 42, SeedSet: true, Quick: true}
	if err := suite.RunAllDeterministic(ids, opts, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := suite.RunAllMemoTransparent(ids, opts, []int{2}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRunAllDeterministicErrors checks the law's error half: a suite
// containing an unknown id must fail identically — same error text, same
// partial results — under every worker count.
func TestPropRunAllDeterministicErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("suite determinism sweep is not short")
	}
	ids := []string{"f1", "no-such-experiment", "t6"}
	opts := experiments.Options{Seed: 7, SeedSet: true, Quick: true}
	if err := suite.RunAllDeterministic(ids, opts, []int{1, 3}); err != nil {
		t.Fatal(err)
	}
}
