package metrics

import (
	"sync"
	"testing"
)

// TestFixedHistogramQuantiles checks the additive error bound: the reported
// quantile is the upper edge of the sample's bucket, at most one width high.
func TestFixedHistogramQuantiles(t *testing.T) {
	h := NewFixedHistogram(1000, 1_000_000) // width 1000
	for v := int64(0); v < 1_000_000; v += 10_000 {
		h.Observe(v)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	// The true median of {0, 10k, ..., 990k} ranks at 490k or 500k; the
	// estimate must sit within one bucket width above a true sample.
	med := h.Quantile(0.5)
	if med < 490_000 || med > 501_000 {
		t.Fatalf("p50 = %d, want within a bucket of the true median", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 980_000 || p99 > 991_000 {
		t.Fatalf("p99 = %d", p99)
	}
	if h.Quantile(1) != 991_000 {
		t.Fatalf("p100 = %d, want upper edge of top sample's bucket", h.Quantile(1))
	}
}

// TestFixedHistogramClamps: negatives go to bucket zero, overshoot clamps
// into the top bucket, and quantile never exceeds the configured range.
func TestFixedHistogramClamps(t *testing.T) {
	h := NewFixedHistogram(10, 100)
	h.Observe(-50)
	h.Observe(1_000_000)
	if got := h.Quantile(0.25); got != 10 {
		t.Fatalf("clamped negative landed at %d, want first bucket edge 10", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("overshoot quantile = %d, want clamped to 100", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d", got)
	}
}

// TestFixedHistogramEmpty: an empty histogram reports zero everywhere.
func TestFixedHistogramEmpty(t *testing.T) {
	h := NewFixedHistogram(16, 1000)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

// TestFixedHistogramDegenerateConfig: hostile constructor arguments are
// normalized, not propagated.
func TestFixedHistogramDegenerateConfig(t *testing.T) {
	h := NewFixedHistogram(0, -5)
	h.Observe(3)
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("degenerate histogram quantile = %d", got)
	}
}

// TestFixedHistogramMergeOrderIndependent is the determinism property the
// fleet pipeline leans on: the same sample multiset recorded from any number
// of goroutines in any interleaving yields identical counters.
func TestFixedHistogramMergeOrderIndependent(t *testing.T) {
	samples := make([]int64, 5000)
	for i := range samples {
		samples[i] = int64(i * 37 % 1_000_000)
	}
	serial := NewFixedHistogram(500, 1_000_000)
	for _, v := range samples {
		serial.Observe(v)
	}
	concurrent := NewFixedHistogram(500, 1_000_000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += 8 {
				concurrent.Observe(samples[i])
			}
		}(w)
	}
	wg.Wait()
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if a, b := serial.Quantile(q), concurrent.Quantile(q); a != b {
			t.Fatalf("q=%v: serial %d != concurrent %d", q, a, b)
		}
	}
	if serial.Count() != concurrent.Count() || serial.Sum() != concurrent.Sum() {
		t.Fatal("count/sum diverged across recording orders")
	}
}
