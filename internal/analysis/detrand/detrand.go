// Package detrand forbids hidden nondeterminism sources — the process-wide
// math/rand generator and wall-clock reads — in the repository's
// deterministic packages (the simulators, attacks, defenses, and
// experiment generators whose entire output must be a pure function of the
// seed; see DESIGN.md §8).
//
// Flagged:
//   - any use of a math/rand or math/rand/v2 package-level function other
//     than the constructors (rand.Intn, rand.Float64, rand.Shuffle, ...):
//     these draw from the global generator, whose stream is shared across
//     goroutines and reseeded per process;
//   - time.Now, time.Since, time.Until: wall-clock reads that make output
//     depend on when — not just with which seed — the code ran.
//
// Allowed: rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG and every
// use of an explicitly seeded *rand.Rand. Packages where wall-clock is the
// point (the serving layer's latency metrics, the CLIs' progress output)
// are excluded by the driver's scope, not by this analyzer.
package detrand

import (
	"go/ast"
	"go/types"

	"privmem/internal/analysis"
)

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand and wall-clock reads in deterministic packages",
	Run:  run,
}

// allowedConstructors are the math/rand package-level functions that do not
// touch the global generator.
var allowedConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// forbiddenTimeFuncs are the wall-clock reads in package time.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !allowedConstructors[fn.Name()] {
					pass.Reportf(id.Pos(),
						"use of global math/rand.%s: deterministic packages must draw from an explicitly seeded rand.New(rand.NewSource(seed))", fn.Name())
				}
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"wall-clock time.%s in a deterministic package: derive instants from the simulated world's epoch, not from when the code runs", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
