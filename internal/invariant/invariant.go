// Package invariant encodes the reproduction's cross-package correctness
// laws as reusable property checkers. Each checker states one invariant the
// paper's evaluation relies on — energy conservation through resampling, the
// half-open index/time contract, billing totals matching integrated energy,
// bit-identical concurrent suite runs, and defense metrics moving monotonically
// with their knob — and returns a descriptive error when the law is violated.
//
// Checkers are pure functions over their inputs so they can be driven from
// property tests in any package (timeseries, meter, experiments, defense/*)
// without this package importing the caller. Randomized inputs come from
// Check/Rand, which derive a deterministic sub-seed per case: a reported
// failure names its case index and replays exactly.
package invariant

import (
	"fmt"
	"math"
	"time"

	"privmem/internal/meter"
	"privmem/internal/timeseries"
)

// relTol is the relative tolerance for float comparisons that should agree
// up to summation-order effects.
const relTol = 1e-9

// approxEqual reports whether a and b agree within rel relative tolerance
// (anchored to the larger magnitude, with an absolute floor for values near
// zero).
func approxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*math.Max(scale, 1)
}

// EnergyConservedUnderResample checks the Series.Resample contract: the
// integral of the series over time (Energy) is conserved when resampling to
// step, whether coarsening (partial tail bucket averaged over the full step)
// or refining (sample-and-hold). step must be a valid resampling target for
// s; the checker surfaces the Resample error otherwise.
func EnergyConservedUnderResample(s *timeseries.Series, step time.Duration) error {
	r, err := s.Resample(step)
	if err != nil {
		return fmt.Errorf("invariant: resample %v -> %v: %w", s.Step, step, err)
	}
	if !approxEqual(s.Energy(), r.Energy(), relTol) {
		return fmt.Errorf("invariant: energy not conserved by resample %v -> %v: %.9f Wh vs %.9f Wh (n=%d)",
			s.Step, step, s.Energy(), r.Energy(), s.Len())
	}
	if !r.Start.Equal(s.Start) {
		return fmt.Errorf("invariant: resample moved start %v -> %v", s.Start, r.Start)
	}
	return nil
}

// IndexTimeRoundTrip checks the half-open interval contract of
// Series.IndexOf/TimeAt: any instant inside [TimeAt(i), TimeAt(i)+Step) maps
// back to index i, the instant just before Start maps to a negative index
// (never truncated onto sample 0), and At agrees with direct indexing.
func IndexTimeRoundTrip(s *timeseries.Series) error {
	if s.Len() == 0 {
		return nil
	}
	offsets := []time.Duration{0, s.Step / 2, s.Step - time.Nanosecond}
	for i := 0; i < s.Len(); i++ {
		base := s.TimeAt(i)
		for _, off := range offsets {
			if got := s.IndexOf(base.Add(off)); got != i {
				return fmt.Errorf("invariant: IndexOf(TimeAt(%d)+%v) = %d, want %d (step %v)", i, off, got, i, s.Step)
			}
		}
		if got := s.At(base); got != s.Values[i] {
			return fmt.Errorf("invariant: At(TimeAt(%d)) = %v, want %v", i, got, s.Values[i])
		}
	}
	if got := s.IndexOf(s.Start.Add(-time.Nanosecond)); got >= 0 {
		return fmt.Errorf("invariant: pre-start instant mapped to index %d, want negative", got)
	}
	if got := s.IndexOf(s.End()); got != s.Len() {
		return fmt.Errorf("invariant: IndexOf(End()) = %d, want %d", got, s.Len())
	}
	return nil
}

// WindowsPartition checks that Series.Windows partitions the covered prefix
// of the series: window stats concatenated in order reconstruct the
// whole-prefix mean, min, and max exactly (up to summation order), each
// window starts where the previous ended, and a width that does not divide
// the length drops only the trailing partial window.
func WindowsPartition(s *timeseries.Series, width time.Duration) error {
	stats, err := s.Windows(width)
	if err != nil {
		return fmt.Errorf("invariant: windows(%v): %w", width, err)
	}
	k := int(width / s.Step)
	wantWindows := s.Len() / k
	if len(stats) != wantWindows {
		return fmt.Errorf("invariant: windows(%v) returned %d windows, want %d", width, len(stats), wantWindows)
	}
	covered := wantWindows * k
	if dropped := s.Len() - covered; dropped < 0 || dropped >= k {
		return fmt.Errorf("invariant: windows(%v) dropped %d samples, want tail in [0, %d)", width, dropped, k)
	}
	if covered == 0 {
		return nil
	}
	prefix := s.Slice(0, covered)
	var n int
	var sum float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	for w, st := range stats {
		if st.N != k {
			return fmt.Errorf("invariant: window %d has %d samples, want %d", w, st.N, k)
		}
		if want := s.TimeAt(w * k); !st.Start.Equal(want) {
			return fmt.Errorf("invariant: window %d starts at %v, want %v", w, st.Start, want)
		}
		n += st.N
		sum += st.Mean * float64(st.N)
		minV = math.Min(minV, st.Min)
		maxV = math.Max(maxV, st.Max)
	}
	if n != covered {
		return fmt.Errorf("invariant: windows cover %d samples, want %d", n, covered)
	}
	if !approxEqual(sum/float64(n), prefix.Mean(), relTol) {
		return fmt.Errorf("invariant: window means reconstruct mean %.9f, series prefix mean %.9f", sum/float64(n), prefix.Mean())
	}
	if minV != prefix.Min() || maxV != prefix.Max() {
		return fmt.Errorf("invariant: window min/max = %v/%v, prefix min/max = %v/%v",
			minV, maxV, prefix.Min(), prefix.Max())
	}
	return nil
}

// BillingConservesEnergy checks the AMI billing contract: the sum of
// meter.BillingReadings over a power series stays within tolWh watt-hours of
// the series' integrated Energy. The drift-compensating accumulator
// guarantees 0.5 Wh over any trace length; callers pass their acceptable
// bound (usually 0.5 plus float slack).
func BillingConservesEnergy(power *timeseries.Series, tolWh float64) error {
	readings := meter.BillingReadings(power)
	if len(readings) != power.Len() {
		return fmt.Errorf("invariant: %d billing readings for %d samples", len(readings), power.Len())
	}
	total := float64(meter.TotalWattHours(readings))
	if diff := math.Abs(total - power.Energy()); diff > tolWh {
		return fmt.Errorf("invariant: billed %v Wh vs energy %.3f Wh: drift %.3f Wh exceeds %.3f Wh (n=%d)",
			total, power.Energy(), diff, tolWh, power.Len())
	}
	for i, r := range readings {
		if !r.Start.Equal(power.TimeAt(i)) {
			return fmt.Errorf("invariant: reading %d starts at %v, want %v", i, r.Start, power.TimeAt(i))
		}
	}
	return nil
}

// Direction selects the sense of a Monotone check.
type Direction int

const (
	// NonDecreasing requires ys[i+1] >= ys[i] - tol.
	NonDecreasing Direction = iota
	// NonIncreasing requires ys[i+1] <= ys[i] + tol.
	NonIncreasing
)

func (d Direction) String() string {
	if d == NonIncreasing {
		return "non-increasing"
	}
	return "non-decreasing"
}

// Monotone checks that the metric ys is monotone in the knob xs in the given
// direction, tolerating violations up to tol per step (defense responses are
// simulated, so small non-monotonic ripples are physical, not bugs — the
// invariant is the trend). xs must be strictly increasing: the caller
// controls knob ordering, the checker validates it.
func Monotone(name string, xs, ys []float64, dir Direction, tol float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("invariant: %s: %d knobs vs %d metrics", name, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return fmt.Errorf("invariant: %s: need at least 2 knob settings, got %d", name, len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return fmt.Errorf("invariant: %s: knobs not strictly increasing at %d (%v <= %v)", name, i, xs[i], xs[i-1])
		}
		step := ys[i] - ys[i-1]
		if dir == NonIncreasing {
			step = -step
		}
		if step < -tol {
			return fmt.Errorf("invariant: %s not %s in knob: metric %v at knob %v but %v at knob %v (tol %v)",
				name, dir, ys[i-1], xs[i-1], ys[i], xs[i], tol)
		}
	}
	return nil
}
