package experiments

import (
	"fmt"
	"sync"
)

// World memoization. Profiling RunAll shows most experiment wall-clock goes
// into rebuilding deterministic "worlds" — home.Simulate traces, meter.Read
// streams, weather fields, solar fleets — that are pure functions of the
// effective (seed, quick) pair. Different experiments derive different seeds
// (Options.ForExperiment), so within one suite pass every build still
// happens; the memo pays off when the same experiment re-runs — repeated
// RunAll invocations, benchmark iterations, and report-cache misses in the
// serving daemon.
//
// Worlds are shared READ-ONLY: every consumer audited here either clones
// its input or writes only series it allocates itself (see DESIGN.md §7).
// A builder that grows a world with a mutating consumer must stop memoizing
// it (as the fitness worlds do: AddFacility mutates).
//
// The memo is singleflight: concurrent callers of one key share a single
// build, and waiters observe the builder's error. Failed builds are NOT
// cached — the entry is removed before waiters are released, so the next
// caller rebuilds.

// worldMemoCap bounds retained worlds. A full suite pass touches ~25
// distinct keys (t8/t9 derive different seeds, so "shared" builders still
// produce one world per experiment id, and the derived classifier/shaping
// worlds add several more); the cap must exceed that working set or
// repeated passes thrash the FIFO.
const worldMemoCap = 64

type memoEntry struct {
	done chan struct{} // closed when the build finishes
	val  any
	err  error
}

type worldMemoState struct {
	mu      sync.Mutex
	enabled bool
	entries map[string]*memoEntry
	order   []string // completed keys, oldest first, for FIFO eviction
	builds  map[string]int
}

var worldMemo = &worldMemoState{
	enabled: true,
	entries: map[string]*memoEntry{},
	builds:  map[string]int{},
}

// worldBuildErrHook, when set, injects a build failure for matching keys.
// Tests use it to prove errors are returned to every in-flight waiter and
// never cached. Always nil outside tests.
var worldBuildErrHook func(key string) error

// SetWorldMemo enables or disables world memoization, flushing all cached
// worlds either way. The invariant suite toggles it to prove reports are
// bit-identical with the memo on or off; it is on by default.
func SetWorldMemo(enabled bool) {
	worldMemo.mu.Lock()
	defer worldMemo.mu.Unlock()
	worldMemo.enabled = enabled
	worldMemo.entries = map[string]*memoEntry{}
	worldMemo.order = nil
}

// resetWorldMemoCounters clears the per-key build counts (test helper).
func resetWorldMemoCounters() {
	worldMemo.mu.Lock()
	defer worldMemo.mu.Unlock()
	worldMemo.builds = map[string]int{}
}

// worldBuildCount reports how many times key's builder actually ran.
func worldBuildCount(key string) int {
	worldMemo.mu.Lock()
	defer worldMemo.mu.Unlock()
	return worldMemo.builds[key]
}

// memoKey derives the canonical memo key for a world builder under opts:
// the builder name plus the effective seed and scale. Everything a builder
// reads from Options must be captured here.
func memoKey(builder string, opts Options) string {
	return fmt.Sprintf("%s|seed=%d|quick=%t", builder, opts.seed(), opts.Quick)
}

// memoWorld returns the world cached under key, building it at most once
// per cache generation. Concurrent callers singleflight: one builds, the
// rest wait on the same entry. Build errors propagate to every waiter but
// leave no entry behind.
//
//lint:trust memoWorld mutex-guarded singleflight memo keyed on (builder, seed, quick); invariant.RunAllMemoTransparent proves reports are bit-identical with the memo on or off
func memoWorld[T any](key string, build func() (T, error)) (T, error) {
	m := worldMemo
	m.mu.Lock()
	if !m.enabled {
		m.builds[key]++
		m.mu.Unlock()
		return runWorldBuild(key, build)
	}
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		if e.err != nil {
			var zero T
			return zero, e.err
		}
		return e.val.(T), nil
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.builds[key]++
	m.mu.Unlock()

	v, err := runWorldBuild(key, build)

	m.mu.Lock()
	if err != nil {
		// Never cache failures: drop the entry (if this generation still
		// owns it) so the next caller retries the build.
		if m.entries[key] == e {
			delete(m.entries, key)
		}
		e.err = err
	} else {
		e.val = v
		if m.entries[key] == e {
			m.order = append(m.order, key)
			if len(m.order) > worldMemoCap {
				oldest := m.order[0]
				m.order = m.order[1:]
				delete(m.entries, oldest)
			}
		}
	}
	m.mu.Unlock()
	close(e.done)
	return v, err
}

func runWorldBuild[T any](key string, build func() (T, error)) (T, error) {
	if hook := worldBuildErrHook; hook != nil {
		if err := hook(key); err != nil {
			var zero T
			return zero, err
		}
	}
	return build()
}
