package hmm

import (
	"errors"
	"fmt"
)

// ErrBadStream indicates invalid streaming-decode parameters.
var ErrBadStream = errors.New("hmm: invalid stream config")

// prepTables returns the decode kernel's precomputed state, building it on
// first use. Decode and the streaming decoder share these tables, which is
// what the fleet pipeline relies on: one prep per model, reused by every
// incremental decoder attached to it.
func (f *Factorial) prepTables() *factorialPrep {
	f.prepOnce.Do(func() { f.prep = f.buildPrep() })
	return f.prep
}

// DecodeWindowed is the batch counterpart of the streaming decoder: exact
// Viterbi run window-by-window with the delta row carried across window
// boundaries. Within each window of `window` observations the full lattice
// is kept and backtracked; at each boundary the decoder commits to the
// maximum-likelihood joint state of the window's last step and discards the
// lattice, so later observations can no longer revise earlier windows.
//
// This is the standard bounded-lag approximation of full Viterbi. Two laws
// pin it down, both enforced bit-exactly by the golden tests:
//
//   - DecodeWindowed(obs, len(obs)) equals Decode(obs) — a single window is
//     full Viterbi, same arithmetic, same strictly-greater argmax tie-break;
//   - a StreamDecoder fed the same observations one at a time (in any chunk
//     sizes) emits exactly DecodeWindowed's states at every window boundary.
func (f *Factorial) DecodeWindowed(obs []float64, window int) ([][]int, error) {
	nc := len(f.Chains)
	if window < 1 {
		return nil, fmt.Errorf("%w: window %d", ErrBadStream, window)
	}
	out := make([][]int, nc)
	for i := range out {
		out[i] = make([]int, len(obs))
	}
	if len(obs) == 0 {
		return out, nil
	}
	p := f.prepTables()
	nj := p.nj
	delta := make([]float64, nj)
	next := make([]float64, nj)
	prev := make([]int32, window*nj)

	for lo := 0; lo < len(obs); lo += window {
		hi := lo + window
		if hi > len(obs) {
			hi = len(obs)
		}
		for t := lo; t < hi; t++ {
			r := t - lo
			if t == 0 {
				for j := 0; j < nj; j++ {
					delta[j] = p.initLog[j] + p.emitLog(obs[0], j)
				}
				continue
			}
			// Row r's backpointers locate step r's best predecessor inside
			// this window; row 0 of a non-first window points across the
			// boundary and is never read back.
			p.sweepRange(obs[t], delta, next, prev[r*nj:(r+1)*nj], 0, nj)
			delta, next = next, delta
		}
		emitWindow(p, delta, prev, out, lo, hi-lo)
	}
	return out, nil
}

// emitWindow backtracks the current window's lattice — argmax over the
// carried delta row at the window's last step, then prev rows n-1..1 — and
// writes the per-chain states for steps [lo, lo+n) into out.
func emitWindow(p *factorialPrep, delta []float64, prev []int32, out [][]int, lo, n int) {
	nj, nc := p.nj, p.nc
	best, arg := delta[0], 0
	for j := 1; j < nj; j++ {
		if delta[j] > best {
			best, arg = delta[j], j
		}
	}
	j := arg
	for r := n - 1; r >= 0; r-- {
		for i := 0; i < nc; i++ {
			out[i][lo+r] = int(p.states[j*nc+i])
		}
		if r > 0 {
			j = int(prev[r*nj+j])
		}
	}
}

// StreamDecoder decodes a factorial HMM incrementally: observations are
// pushed one at a time and the decoder emits the per-chain Viterbi states of
// each completed window, carrying the delta row across boundaries exactly
// like DecodeWindowed. Its working set — two delta rows plus one window of
// backpointers — is fixed at construction, independent of how many
// observations ever flow through it, which is the bounded-memory contract
// the fleet ingest workers rely on.
//
// A StreamDecoder is not safe for concurrent use; each stream of
// observations owns its decoder. Decoders attached to the same Factorial
// share its prep tables.
type StreamDecoder struct {
	p      *factorialPrep
	window int
	delta  []float64
	next   []float64
	prev   []int32
	filled int // observations in the open window
	seen   bool
	// Beam state: width 0 means the dense sweep; otherwise sweeps go
	// through beamSweep under bm. The scratch is owned by this decoder (a
	// StreamDecoder is single-goroutine by contract), so beam streaming
	// allocates nothing per Push either.
	bm    Beam
	width int
	bsc   *decodeScratch
	// emit buffers are reallocated per emission: callers typically retain
	// the emitted paths past the next Push.
}

// NewStreamDecoder returns an incremental decoder emitting every `window`
// observations. The model's prep tables are built now (not at first Push)
// so construction, not the hot path, pays the one-time cost.
func (f *Factorial) NewStreamDecoder(window int) (*StreamDecoder, error) {
	if window < 1 {
		return nil, fmt.Errorf("%w: window %d", ErrBadStream, window)
	}
	p := f.prepTables()
	return &StreamDecoder{
		p:      p,
		window: window,
		delta:  make([]float64, p.nj),
		next:   make([]float64, p.nj),
		prev:   make([]int32, window*p.nj),
	}, nil
}

// NewStreamDecoderBeam is NewStreamDecoder with beam pruning: the same
// Beam semantics as DecodeBeam, applied to every windowed sweep. The
// zero-value Beam{} gives exact auto-width pruning, bit-identical to
// NewStreamDecoder (and so to DecodeWindowed — the online-equivalence laws
// hold for beam streams too); Approx/Float32 opt into the approximate
// modes.
func (f *Factorial) NewStreamDecoderBeam(window int, bm Beam) (*StreamDecoder, error) {
	if err := bm.Validate(); err != nil {
		return nil, err
	}
	d, err := f.NewStreamDecoder(window)
	if err != nil {
		return nil, err
	}
	if bm.Float32 {
		f.ensurePrep32()
	}
	d.bm = bm
	d.width = bm.width(d.p.nj)
	d.bsc = &decodeScratch{}
	return d, nil
}

// Window returns the emission window length.
func (d *StreamDecoder) Window() int { return d.window }

// Push feeds one observation. When it completes a window, Push returns the
// per-chain state sequences for that window's observations and true;
// otherwise it returns nil and false.
func (d *StreamDecoder) Push(x float64) ([][]int, bool) {
	p := d.p
	nj := p.nj
	r := d.filled
	if !d.seen {
		if d.bm.Float32 {
			x32 := float32(x)
			for j := 0; j < nj; j++ {
				d.delta[j] = p.initLog[j] + float64(p.emitLog32(x32, j))
			}
		} else {
			for j := 0; j < nj; j++ {
				d.delta[j] = p.initLog[j] + p.emitLog(x, j)
			}
		}
		d.seen = true
	} else {
		if d.width > 0 {
			p.beamSweep(x, d.delta, d.next, d.prev[r*nj:(r+1)*nj], d.bsc, d.width, d.bm)
		} else {
			p.sweepRange(x, d.delta, d.next, d.prev[r*nj:(r+1)*nj], 0, nj)
		}
		d.delta, d.next = d.next, d.delta
	}
	d.filled++
	if d.filled < d.window {
		return nil, false
	}
	return d.emit(), true
}

// Flush emits the open partial window, if any. The decoder remains usable:
// subsequent observations start a new window seeded from the carried delta,
// matching DecodeWindowed applied to the flushed-at boundary.
func (d *StreamDecoder) Flush() ([][]int, bool) {
	if d.filled == 0 {
		return nil, false
	}
	return d.emit(), true
}

func (d *StreamDecoder) emit() [][]int {
	out := make([][]int, d.p.nc)
	for i := range out {
		out[i] = make([]int, d.filled)
	}
	emitWindow(d.p, d.delta, d.prev, out, 0, d.filled)
	d.filled = 0
	return out
}
