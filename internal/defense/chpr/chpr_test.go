package chpr

import (
	"errors"
	"testing"
	"time"

	"privmem/internal/attack/niom"
	"privmem/internal/home"
	"privmem/internal/timeseries"
)

func simHome(t *testing.T, seed int64, days int) *home.Trace {
	t.Helper()
	cfg := home.DefaultConfig(seed)
	cfg.Days = days
	cfg.IncludeWaterHeater = false
	tr, err := home.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBaselineServesDrawsComfortably(t *testing.T) {
	tr := simHome(t, 1, 7)
	res, err := Baseline(DefaultTank(), tr.WaterDraws, tr.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	if res.ComfortViolations != 0 {
		t.Errorf("baseline comfort violations = %d", res.ComfortViolations)
	}
	if res.EnergyWh <= 0 {
		t.Error("baseline used no energy")
	}
	// Roughly the energy of the drawn hot water (within a factor).
	var liters float64
	for _, d := range tr.WaterDraws {
		liters += d.Liters
	}
	wantWh := liters * (DefaultTank().SetC - DefaultTank().InletC) * whPerLiterKelvin
	if res.EnergyWh < wantWh*0.8 || res.EnergyWh > wantWh*1.8 {
		t.Errorf("baseline energy %.0f Wh vs draw demand %.0f Wh", res.EnergyWh, wantWh)
	}
	// Temperature stays within physical bounds.
	if res.TankTempC.Max() > DefaultTank().MaxC+1 {
		t.Errorf("baseline overheated: %.1f C", res.TankTempC.Max())
	}
}

func TestBaselineHeatsOnlyAfterDraws(t *testing.T) {
	tr := simHome(t, 2, 3)
	res, err := Baseline(DefaultTank(), tr.WaterDraws, tr.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	// The element must be off most of the time (only reheat after draws
	// plus occasional standing-loss recovery).
	var onMin int
	for _, v := range res.HeaterPower.Values {
		if v > 0 {
			onMin++
		}
	}
	if frac := float64(onMin) / float64(res.HeaterPower.Len()); frac > 0.15 {
		t.Errorf("baseline element on %.0f%% of the time", frac*100)
	}
}

func TestMaskDefeatsNIOM(t *testing.T) {
	tr := simHome(t, 3, 7)
	tank := DefaultTank()
	base, err := Baseline(tank, tr.WaterDraws, tr.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := Mask(tank, DefaultConfig(3), tr.Aggregate, tr.WaterDraws)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := tr.Aggregate.Add(base.HeaterPower)
	if err != nil {
		t.Fatal(err)
	}
	defended, err := tr.Aggregate.Add(masked.HeaterPower)
	if err != nil {
		t.Fatal(err)
	}
	po, err := niom.DetectThreshold(orig, niom.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pd, err := niom.DetectThreshold(defended, niom.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eo, err := niom.Evaluate(tr.Occupancy, po)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := niom.Evaluate(tr.Occupancy, pd)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 6: MCC drops roughly tenfold to near-random.
	if eo.MCC < 0.2 {
		t.Fatalf("attack on original trace too weak (MCC %.3f) to show masking", eo.MCC)
	}
	if ed.MCC > eo.MCC/4 {
		t.Errorf("masked MCC %.3f not far below original %.3f", ed.MCC, eo.MCC)
	}
	if ed.MCC > 0.1 {
		t.Errorf("masked MCC %.3f, want near random (0)", ed.MCC)
	}
}

func TestMaskPreservesHotWater(t *testing.T) {
	tr := simHome(t, 4, 14)
	masked, err := Mask(DefaultTank(), DefaultConfig(4), tr.Aggregate, tr.WaterDraws)
	if err != nil {
		t.Fatal(err)
	}
	if masked.ComfortViolations != 0 {
		t.Errorf("CHPr caused %d comfort violations", masked.ComfortViolations)
	}
	tank := DefaultTank()
	if masked.TankTempC.Max() > tank.MaxC+1 {
		t.Errorf("tank exceeded max temp: %.1f C", masked.TankTempC.Max())
	}
}

func TestMaskEnergyOverheadBounded(t *testing.T) {
	// CHPr is nearly free: the element mostly shifts when water is heated.
	tr := simHome(t, 5, 14)
	tank := DefaultTank()
	base, err := Baseline(tank, tr.WaterDraws, tr.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := Mask(tank, DefaultConfig(5), tr.Aggregate, tr.WaterDraws)
	if err != nil {
		t.Fatal(err)
	}
	if masked.EnergyWh > base.EnergyWh*1.4 {
		t.Errorf("CHPr energy %.0f Wh vs baseline %.0f Wh: overhead too high",
			masked.EnergyWh, base.EnergyWh)
	}
}

func TestMaskActivityAwareness(t *testing.T) {
	// During a loud rest-load period the controller should not burn budget.
	start := time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)
	rest := timeseries.MustNew(start, time.Minute, 2*1440)
	// First day loud (big oscillating load), second day silent.
	for i := 0; i < 1440; i++ {
		if i%10 < 5 {
			rest.Values[i] = 2500
		} else {
			rest.Values[i] = 300
		}
	}
	res, err := Mask(DefaultTank(), DefaultConfig(6), rest, nil)
	if err != nil {
		t.Fatal(err)
	}
	loud := res.HeaterPower.Slice(0, 1440).Energy()
	quiet := res.HeaterPower.Slice(1440, 2880).Energy()
	if loud >= quiet {
		t.Errorf("masking energy loud day %.0f Wh >= quiet day %.0f Wh", loud, quiet)
	}
	if quiet == 0 {
		t.Error("no masking on the silent day")
	}
}

func TestValidation(t *testing.T) {
	start := time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)
	rest := timeseries.MustNew(start, time.Minute, 100)
	badTank := DefaultTank()
	badTank.VolumeL = 0
	if _, err := Baseline(badTank, nil, rest); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad tank error = %v", err)
	}
	badTank = DefaultTank()
	badTank.MinC = badTank.SetC + 1
	if _, err := Mask(badTank, DefaultConfig(1), rest, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("temperature ladder error = %v", err)
	}
	cfg := DefaultConfig(1)
	cfg.BurstW = 99999
	if _, err := Mask(DefaultTank(), cfg, rest, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("burst above element error = %v", err)
	}
	cfg = DefaultConfig(1)
	cfg.BurstOn = -time.Minute
	if _, err := Mask(DefaultTank(), cfg, rest, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative burst error = %v", err)
	}
}

// TestThermalEnergyConservation is the physics property test: over any run,
// element energy input must equal tank energy change plus standing losses
// plus the energy carried away by draws, within numerical tolerance.
func TestThermalEnergyConservation(t *testing.T) {
	tr := simHome(t, 21, 7)
	tank := DefaultTank()
	for name, run := range map[string]func() (*Result, error){
		"baseline": func() (*Result, error) { return Baseline(tank, tr.WaterDraws, tr.Aggregate) },
		"chpr":     func() (*Result, error) { return Mask(tank, DefaultConfig(21), tr.Aggregate, tr.WaterDraws) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		heatCap := tank.VolumeL * whPerLiterKelvin
		// Tank energy change relative to the SetC start.
		finalT := res.TankTempC.Values[res.TankTempC.Len()-1]
		deltaE := (finalT - tank.SetC) * heatCap

		// Standing losses integrated over the temperature trace.
		var lossWh float64
		hours := res.TankTempC.Step.Hours()
		for _, temp := range res.TankTempC.Values {
			lossWh += tank.LossWPerK * (temp - tank.AmbientC) * hours
		}

		// Draw energy: each draw removes (T - inlet) * liters of heat. The
		// simulator applies draws at the pre-draw temperature; reconstruct
		// from the temperature trace at the draw instant.
		var drawWh float64
		for _, d := range tr.WaterDraws {
			i := res.TankTempC.IndexOf(d.Time)
			if i <= 0 || i >= res.TankTempC.Len() {
				continue
			}
			preT := res.TankTempC.Values[i-1]
			drawWh += d.Liters * whPerLiterKelvin * (preT - tank.InletC)
		}

		input := res.HeaterPower.Energy()
		balance := deltaE + lossWh + drawWh
		if tol := 0.05 * input; balance < input-tol || balance > input+tol {
			t.Errorf("%s: energy imbalance: input %.0f Wh vs accounted %.0f Wh (dE=%.0f loss=%.0f draw=%.0f)",
				name, input, balance, deltaE, lossWh, drawWh)
		}
	}
}
