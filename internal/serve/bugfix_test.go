package serve

// Regression tests for the four serving-layer bugs fixed alongside the
// tier work. Each test fails against the pre-fix code:
//
//   - seed-0 route divergence: POST /v1/suite {"seed":0} used to silently
//     serve seed 42 while GET /v1/report/{id}?seed=0 served seed 0;
//   - leaked flight on panic: a panic escaping the generate recover region
//     (e.g. a panicking fault hook) left the singleflight call registered
//     forever, wedging every later request for that key;
//   - suite budget: the whole suite fan-out shared one report's budget, so
//     a cold suite on a small pool 504ed even when each id fit;
//   - cache bound overshoot: the per-shard split rounded up, so
//     NewCache(17) could hold 32 entries.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"privmem/internal/experiments"
)

// TestSuiteSeedZeroMatchesReportRoute proves the two routes agree at seed
// 0: a suite generated with an explicit "seed": 0 must populate exactly the
// cache entries GET ?seed=0 reads, and the bodies must match.
func TestSuiteSeedZeroMatchesReportRoute(t *testing.T) {
	f := &fakeRun{}
	_, h := newTestServer(t, Config{Run: f.run})

	suite := post(t, h, "/v1/suite", `{"ids":["f1"],"seed":0}`)
	if suite.Code != http.StatusOK {
		t.Fatalf("suite = %d %s", suite.Code, suite.Body.String())
	}
	var body struct {
		Reports []experiments.Report `json:"reports"`
	}
	if err := json.Unmarshal(suite.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if n := len(body.Reports); n != 1 {
		t.Fatalf("suite reports = %d, want 1", n)
	}

	// The report route at seed 0 must be a cache hit on the suite's entry —
	// pre-fix the suite silently ran seed 42, so this was a miss that
	// re-simulated under a different seed.
	rec := get(t, h, "/v1/report/f1?seed=0&format=json")
	if rec.Code != http.StatusOK {
		t.Fatalf("report seed=0 = %d", rec.Code)
	}
	if src := rec.Header().Get("X-Memoird-Cache"); src != "hit" {
		t.Errorf("report seed=0 after suite seed 0 = %q, want hit", src)
	}
	if n := f.invocations.Load(); n != 1 {
		t.Errorf("simulations = %d, want 1 (routes must share the seed-0 entry)", n)
	}
	suiteReport, err := json.Marshal(body.Reports[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(rec.Body.String()), string(suiteReport); got != want {
		t.Errorf("seed-0 bodies differ between routes:\nreport: %s\nsuite:  %s", got, want)
	}

	// The fake run records the seed it was handed; seed 0 must survive to
	// the generator rather than being remapped to 42.
	if seed := body.Reports[0].Metrics["seed"]; seed != 0 {
		t.Errorf("suite seed 0 ran with seed %v, want 0", seed)
	}

	// An absent seed field still selects the default 42, shared with the
	// report route's default.
	def := post(t, h, "/v1/suite", `{"ids":["f1"]}`)
	if def.Code != http.StatusOK {
		t.Fatalf("default suite = %d", def.Code)
	}
	if rec := get(t, h, "/v1/report/f1"); rec.Header().Get("X-Memoird-Cache") != "hit" {
		t.Errorf("default-seed report after default suite = %q, want hit", rec.Header().Get("X-Memoird-Cache"))
	}
}

// TestChaosPanicInFaultHookRecoversNextRequest panics outside the generate
// recover region (inside the GenerateErr fault hook, which runs directly in
// the flight function) and proves the flight is not leaked: the very next
// request for the same key must generate fresh instead of coalescing onto
// the dead flight until its budget expires.
func TestChaosPanicInFaultHookRecoversNextRequest(t *testing.T) {
	var calls atomic.Int64
	f := &fakeRun{}
	s := New(Config{Run: f.run, Timeout: 5 * time.Second, Faults: &Faults{
		GenerateErr: func(id string) error {
			if calls.Add(1) == 1 {
				panic("injected fault-hook panic")
			}
			return nil
		},
	}})

	// The panic escapes the handler goroutine, so drive the first request
	// through a real http.Server (net/http contains handler panics
	// per-connection; httptest's direct ServeHTTP would kill the test).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String() + "/v1/report/f1?seed=11"

	if resp, err := http.Get(url); err == nil {
		// net/http answers a handler panic by killing the connection, so an
		// error is the expected shape; a 5xx would be acceptable too.
		resp.Body.Close()
		if resp.StatusCode < 500 {
			t.Fatalf("panicked request = %d, want connection error or 5xx", resp.StatusCode)
		}
	}

	// Pre-fix, this request coalesces onto the dead flight and waits out
	// the full 5s budget before 504ing; post-fix it generates immediately.
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("post-panic request: %v (flight leaked?)", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request = %d %s, want 200", resp.StatusCode, body)
	}
	if f.invocations.Load() != 1 {
		t.Errorf("post-panic generations = %d, want 1", f.invocations.Load())
	}
}

// TestFlightGroupPanicUnblocksFollowers pins the follower-facing half of
// the leak fix at the flightGroup level: followers waiting on a leader that
// panics receive ErrGeneratorPanic promptly instead of hanging.
func TestFlightGroupPanicUnblocksFollowers(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() { _ = recover() }()
		g.do(context.Background(), "k", func() (*Entry, error) {
			close(started)
			<-release
			panic("leader dies")
		})
	}()
	<-started

	followerErr := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), "k", func() (*Entry, error) {
			t.Error("follower ran fn despite live flight")
			return nil, nil
		})
		followerErr <- err
	}()
	// Give the follower time to attach, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-leaderDone

	select {
	case err := <-followerErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("follower error = %v, want generator-panic error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower still blocked after leader panic (flight leaked)")
	}

	// The key must be free again: a fresh call runs its own fn.
	ran := false
	if _, _, err := g.do(context.Background(), "k", func() (*Entry, error) {
		ran = true
		return &Entry{Key: "k"}, nil
	}); err != nil || !ran {
		t.Errorf("fresh flight after panic: ran=%t err=%v", ran, err)
	}
}

// TestSuiteBudgetScalesWithWaves runs a cold 4-id suite on a 1-worker pool
// where each generation takes ~half the per-report budget: the fan-out
// needs 4 sequential waves, so under the pre-fix shared single budget it
// 504ed even though every individual generation fit comfortably.
func TestSuiteBudgetScalesWithWaves(t *testing.T) {
	slow := func(ctx context.Context, id string, opts experiments.Options) (*experiments.Report, error) {
		select {
		case <-time.After(60 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &experiments.Report{ID: id, Title: "slow", Metrics: map[string]float64{"seed": float64(opts.Seed)}}, nil
	}
	s, h := newTestServer(t, Config{Run: slow, MaxConcurrent: 1, Timeout: 150 * time.Millisecond})

	rec := post(t, h, "/v1/suite", `{"ids":["f1","f2","t1","t6"],"seed":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold suite on small pool = %d %s, want 200 (budget must scale with waves)",
			rec.Code, rec.Body.String())
	}
	if n := s.Metrics().Generations.Load(); n != 4 {
		t.Errorf("generations = %d, want 4", n)
	}

	// The per-report budget is unchanged: a single report that overruns it
	// still 504s.
	stuck := func(ctx context.Context, id string, opts experiments.Options) (*experiments.Report, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, h2 := newTestServer(t, Config{Run: stuck, Timeout: 40 * time.Millisecond})
	if rec := get(t, h2, "/v1/report/f1"); rec.Code != http.StatusGatewayTimeout {
		t.Errorf("overrunning single report = %d, want 504", rec.Code)
	}
}

// TestCacheExactBound fills caches far past their configured bounds and
// asserts Len never exceeds them — the pre-fix rounded-up shard split let
// NewCache(17) hold up to 32 entries.
func TestCacheExactBound(t *testing.T) {
	for _, bound := range []int{numShards, 17, 33, 100, 256} {
		c := NewCache(bound)
		for i := 0; i < bound*4+7; i++ {
			c.Put(&Entry{Key: fmt.Sprintf("key-%d", i), Text: []byte("x")})
		}
		if got := c.Len(); got > bound {
			t.Errorf("NewCache(%d) holds %d entries after overfill, exceeds bound", bound, got)
		}
		// The split must not starve the cache either: a full sweep should
		// leave it exactly at its bound.
		if got := c.Len(); got < bound-numShards {
			t.Errorf("NewCache(%d) holds only %d entries after overfill", bound, got)
		}
	}
}

// post drives a POST request through the handler, mirroring the get helper.
func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}
