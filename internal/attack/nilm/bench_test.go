package nilm

import (
	"testing"
	"time"

	"privmem/internal/home"
	"privmem/internal/loads"
	"privmem/internal/meter"
)

// BenchmarkPowerPlayWeek measures the online tracker over a week of
// 10-second samples (60480 samples, 5 tracked devices).
func BenchmarkPowerPlayWeek(b *testing.B) {
	cfg := home.DefaultConfig(42)
	cfg.Days = 7
	cfg.Step = 10 * time.Second
	cfg.IncludeWaterHeater = false
	tr, err := home.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mc := meter.DefaultConfig(42)
	mc.Interval = cfg.Step
	metered, err := meter.Read(mc, tr.Aggregate)
	if err != nil {
		b.Fatal(err)
	}
	var models []loads.Model
	for _, name := range loads.TrackedDevices() {
		m, err := loads.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		models = append(models, m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PowerPlay(metered, models, DefaultPowerPlayConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(metered.Len())/1e3, "ksamples")
}
