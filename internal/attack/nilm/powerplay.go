// Package nilm implements Non-Intrusive Load Monitoring: disaggregating a
// home's total power into individual appliances (§II-A of the paper).
//
// Two methods are provided, matching Figure 2's comparison:
//
//   - PowerPlay [2]: a model-driven tracker. It assumes detailed a-priori
//     models of each tracked load (package loads) and maintains a "virtual
//     power meter" per device, driven by switching edges in the aggregate
//     that match a model's signature. Because it reacts only to matching
//     edges, it is robust to unmodeled background loads and meter noise.
//   - FHMM [19]: the conventional learning approach. Per-device hidden
//     Markov models are trained from submetered data and decoded jointly
//     against the aggregate (a factorial HMM). All aggregate variance must
//     be explained by the joint state, so unmodeled loads corrupt the
//     decoding — the effect Figure 2 measures.
package nilm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"privmem/internal/loads"
	"privmem/internal/timeseries"
)

// ErrBadConfig indicates invalid NILM parameters.
var ErrBadConfig = errors.New("nilm: invalid config")

// PowerPlayConfig parameterizes the model-driven tracker.
type PowerPlayConfig struct {
	// Tolerance is the relative mismatch allowed between an observed edge
	// and a model's on-power (default 0.05).
	Tolerance float64
	// MinEdgeW is the smallest edge magnitude considered at all
	// (default 70 W, below the smallest tracked appliance).
	MinEdgeW float64
	// EdgePad is the number of samples used to estimate steady levels
	// around an edge (default 3, which spans ramps smeared by a concurrent
	// switch in an adjacent sample).
	EdgePad int
	// TimingWeight scales the duty-cycle timing penalty used to
	// disambiguate cyclical loads with similar powers (default 0.5).
	TimingWeight float64
	// AbsToleranceW floors the matching tolerance in absolute watts
	// (default 15 W): small loads like a freezer cannot be matched at a
	// purely relative tolerance because concurrent load jitter shifts their
	// edges by tens of watts.
	AbsToleranceW float64
}

// DefaultPowerPlayConfig returns the tracker configuration used in the
// experiments.
func DefaultPowerPlayConfig() PowerPlayConfig {
	return PowerPlayConfig{
		Tolerance:     0.05,
		MinEdgeW:      70,
		EdgePad:       3,
		TimingWeight:  0.5,
		AbsToleranceW: 15,
	}
}

func (c *PowerPlayConfig) withDefaults() PowerPlayConfig {
	out := *c
	d := DefaultPowerPlayConfig()
	if out.Tolerance == 0 {
		out.Tolerance = d.Tolerance
	}
	if out.MinEdgeW == 0 {
		out.MinEdgeW = d.MinEdgeW
	}
	if out.EdgePad == 0 {
		out.EdgePad = d.EdgePad
	}
	if out.TimingWeight == 0 {
		out.TimingWeight = d.TimingWeight
	}
	if out.AbsToleranceW == 0 {
		out.AbsToleranceW = d.AbsToleranceW
	}
	return out
}

// toleranceFor returns the effective relative tolerance for a model,
// applying the absolute floor.
func (c *PowerPlayConfig) toleranceFor(m loads.Model) float64 {
	return math.Max(c.Tolerance, c.AbsToleranceW/m.OnPower)
}

func (c *PowerPlayConfig) validate() error {
	switch {
	case c.Tolerance <= 0 || c.Tolerance >= 1:
		return fmt.Errorf("%w: tolerance %v", ErrBadConfig, c.Tolerance)
	case c.MinEdgeW <= 0:
		return fmt.Errorf("%w: min edge %v W", ErrBadConfig, c.MinEdgeW)
	case c.EdgePad < 1:
		return fmt.Errorf("%w: edge pad %d", ErrBadConfig, c.EdgePad)
	case c.TimingWeight < 0:
		return fmt.Errorf("%w: timing weight %v", ErrBadConfig, c.TimingWeight)
	case c.AbsToleranceW < 0:
		return fmt.Errorf("%w: absolute tolerance %v W", ErrBadConfig, c.AbsToleranceW)
	}
	return nil
}

// trackerState is the virtual power meter of one tracked device.
type trackerState struct {
	model   loads.Model
	on      bool
	onSince int     // sample index of the matched rising edge
	power   float64 // estimated steady power while on
	offAt   int     // sample index of the last matched falling edge
	// expOnSamples is the model's typical on duration in samples, used to
	// truncate a run whose falling edge was missed.
	expOnSamples int
	// maxOnSamples forces the device off if its falling edge was missed.
	maxOnSamples int
}

// PowerPlay runs the model-driven tracker over an aggregate power trace and
// returns one inferred power series per tracked model (keyed by model name).
func PowerPlay(aggregate *timeseries.Series, models []loads.Model, cfg PowerPlayConfig) (map[string]*timeseries.Series, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("powerplay: %w", err)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("powerplay: %w: no models", ErrBadConfig)
	}
	states := make([]*trackerState, 0, len(models))
	for _, m := range models {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("powerplay: %w", err)
		}
		maxOn := m.OnDuration
		if m.DurationJitter > 0 {
			maxOn = time.Duration(float64(maxOn) * (1 + m.DurationJitter))
		}
		maxOnSamples := int(float64(maxOn) / float64(aggregate.Step) * 1.5)
		if m.OffDuration > 0 {
			// Duty-cycled loads have tightly bounded on-phases; a long
			// force-off horizon would leave a wedged virtual meter blind to
			// the next real cycle.
			maxOnSamples = int(float64(maxOn)/float64(aggregate.Step)) + 2
		}
		states = append(states, &trackerState{
			model:        m,
			offAt:        -1,
			expOnSamples: int(m.OnDuration / aggregate.Step),
			maxOnSamples: maxOnSamples,
		})
	}

	edges := aggregate.DetectEdges(cfg.MinEdgeW, cfg.EdgePad)
	out := make(map[string]*timeseries.Series, len(models))
	for _, m := range models {
		out[m.Name] = timeseries.MustNew(aggregate.Start, aggregate.Step, aggregate.Len())
	}

	render := func(st *trackerState, from, to int) {
		dev := out[st.model.Name]
		for i := from; i < to && i < dev.Len(); i++ {
			dev.Values[i] = st.power
		}
	}

	ei := 0
	for i := 0; i < aggregate.Len(); i++ {
		for ei < len(edges) && edges[ei].Index == i {
			e := edges[ei]
			ei++
			if e.Delta > 0 {
				if st := bestRisingMatch(states, e.Delta, i, aggregate.Step, cfg); st != nil {
					if st.on {
						// Re-sync of a wedged duty-cycled meter: close the
						// stale cycle at its typical duration first.
						render(st, st.onSince, st.onSince+st.expOnSamples)
					}
					st.on = true
					st.onSince = i
					st.power = e.Delta
				}
			} else if st := bestFallingMatch(states, -e.Delta, cfg); st != nil {
				render(st, st.onSince, i)
				st.on = false
				st.offAt = i
			}
		}
		// Missed-off safety (after edge handling, so a real falling edge at
		// the deadline wins): a device cannot stay on past its model's
		// plausible maximum. When the falling edge was missed, the model's
		// typical duration is the best estimate of when it actually ended.
		for _, st := range states {
			if st.on && st.maxOnSamples > 0 && i-st.onSince >= st.maxOnSamples {
				render(st, st.onSince, st.onSince+st.expOnSamples)
				st.on = false
				st.offAt = st.onSince + st.expOnSamples
			}
		}
	}
	// Close out devices still on at the end of the trace.
	for _, st := range states {
		if st.on {
			render(st, st.onSince, aggregate.Len())
		}
	}
	return out, nil
}

// bestRisingMatch returns the off device whose model best explains a rising
// edge of magnitude delta, or nil when none matches.
func bestRisingMatch(states []*trackerState, delta float64, idx int, step time.Duration, cfg PowerPlayConfig) *trackerState {
	var best *trackerState
	bestScore := math.Inf(1)
	for _, st := range states {
		if !st.model.MatchesDelta(delta, cfg.toleranceFor(st.model)) {
			continue
		}
		resync := false
		if st.on {
			// Re-sync: a duty-cycled device believed on past its typical
			// duration whose rising signature reappears was wedged by a
			// missed falling edge; accept the edge as a new cycle.
			if st.model.OffDuration == 0 || idx-st.onSince <= st.expOnSamples {
				continue
			}
			resync = true
		}
		score := math.Abs(delta-st.model.OnPower) / st.model.OnPower
		if resync {
			score += 0.25 // prefer a genuinely-off device over a re-sync
		}
		// Cyclical loads should reappear roughly one off-phase after their
		// last falling edge; penalize implausible timing.
		if st.model.OffDuration > 0 && !st.on && st.offAt >= 0 {
			expected := float64(st.model.OffDuration / step)
			gap := float64(idx - st.offAt)
			score += cfg.TimingWeight * math.Abs(gap-expected) / expected
		}
		if score < bestScore {
			best, bestScore = st, score
		}
	}
	return best
}

// bestFallingMatch returns the on device whose current estimated power best
// explains a falling edge of magnitude drop, or nil when none matches.
func bestFallingMatch(states []*trackerState, drop float64, cfg PowerPlayConfig) *trackerState {
	var best *trackerState
	bestScore := math.Inf(1)
	for _, st := range states {
		if !st.on {
			continue
		}
		ref := st.power
		if ref <= 0 {
			ref = st.model.OnPower
		}
		rel := math.Abs(drop-ref) / ref
		if rel > cfg.toleranceFor(st.model)*1.5 {
			continue
		}
		if rel < bestScore {
			best, bestScore = st, rel
		}
	}
	return best
}
