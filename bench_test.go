package privmem

// One benchmark per reproduced figure and table (DESIGN.md §3). Each bench
// regenerates its artifact at reduced ("quick") scale and reports the
// headline metrics alongside timing, so `go test -bench . -benchmem` both
// measures the harness and re-checks every result's shape. Run cmd/figures
// for the full-scale artifacts.

import (
	"context"
	"runtime"
	"testing"

	"privmem/internal/experiments"
)

// benchExperiment runs one experiment per iteration and reports the chosen
// metrics.
func benchExperiment(b *testing.B, id string, metricNames ...string) {
	b.Helper()
	b.ReportAllocs()
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, experiments.Options{Quick: true, Seed: 42})
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		last = rep
	}
	for _, name := range metricNames {
		v, err := last.Metric(name)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, name)
	}
}

// BenchmarkFigure1HomeTraces regenerates Figure 1: the power/occupancy
// overlay for two homes.
func BenchmarkFigure1HomeTraces(b *testing.B) {
	benchExperiment(b, "f1", "corr_power_occupancy_A", "corr_power_occupancy_B")
}

// BenchmarkFigure2Disaggregation regenerates Figure 2: PowerPlay vs FHMM
// disaggregation error. powerplay_wins must be 5 (PowerPlay beats FHMM for
// every tracked device).
func BenchmarkFigure2Disaggregation(b *testing.B) {
	benchExperiment(b, "f2", "powerplay_wins", "powerplay_fridge", "fhmm_fridge")
}

// BenchmarkFigure5Localization regenerates Figure 5: SunSpot vs Weatherman
// localization error (km).
func BenchmarkFigure5Localization(b *testing.B) {
	benchExperiment(b, "f5", "sunspot_median_km", "weatherman_median_km", "weatherman_max_km")
}

// BenchmarkFigure6CHPr regenerates Figure 6: NIOM MCC before and after the
// CHPr water-heater mask.
func BenchmarkFigure6CHPr(b *testing.B) {
	benchExperiment(b, "f6", "mcc_original", "mcc_chpr")
}

// BenchmarkTableNIOMAccuracy regenerates the in-text 70-90% occupancy
// accuracy claim across homes.
func BenchmarkTableNIOMAccuracy(b *testing.B) {
	benchExperiment(b, "t1", "threshold_acc_mean", "threshold_acc_min", "threshold_acc_max")
}

// BenchmarkTableBehaviorInference regenerates the §II-A routine-profiling
// inferences.
func BenchmarkTableBehaviorInference(b *testing.B) {
	benchExperiment(b, "t2", "dryer_runs_inferred", "dryer_runs_true")
}

// BenchmarkTableSunDance regenerates the §II-B net-meter disaggregation
// result.
func BenchmarkTableSunDance(b *testing.B) {
	benchExperiment(b, "t3", "gen_error_mean", "cons_error_mean")
}

// BenchmarkTableBatteryDefense regenerates the §III-B battery-defense
// comparison.
func BenchmarkTableBatteryDefense(b *testing.B) {
	benchExperiment(b, "t4", "mcc_undefended", "mcc_nill_large")
}

// BenchmarkTableDifferentialPrivacy regenerates the §III-A epsilon sweep.
func BenchmarkTableDifferentialPrivacy(b *testing.B) {
	benchExperiment(b, "t5", "mcc_undefended", "mcc_eps_1", "agg_err_eps_1")
}

// BenchmarkTableZKBilling regenerates the §III-C committed-meter billing
// flow — the per-iteration time is dominated by committing every hourly
// reading, so ns/op is the commit+prove+verify cost. verify_ok and
// tampering_caught must both be 1.
func BenchmarkTableZKBilling(b *testing.B) {
	benchExperiment(b, "t6", "verify_ok", "tampering_caught", "commitments")
}

// BenchmarkTableKnobFrontier regenerates the §III-E privacy-knob frontier.
func BenchmarkTableKnobFrontier(b *testing.B) {
	benchExperiment(b, "t7", "mcc_lambda_0", "mcc_lambda_1", "privacy_gain_lambda_1")
}

// BenchmarkTableFingerprint regenerates the §IV traffic-fingerprinting
// attack.
func BenchmarkTableFingerprint(b *testing.B) {
	benchExperiment(b, "t8", "device_id_accuracy", "occupancy_mcc")
}

// BenchmarkTableGateway regenerates the §IV smart-gateway defense
// (quarantine + shaping).
func BenchmarkTableGateway(b *testing.B) {
	benchExperiment(b, "t9", "detected_count", "device_id_per_device", "overhead_per_device")
}

// BenchmarkTableLocalIoT regenerates the §III-D local-analytics comparison.
func BenchmarkTableLocalIoT(b *testing.B) {
	benchExperiment(b, "t10", "cloud_mcc_cloud_pipeline", "cloud_mcc_local_pipeline")
}

// BenchmarkTableFitnessLocation regenerates the §II-C fitness-tracker
// location/health attacks and the privacy-zone sweep.
func BenchmarkTableFitnessLocation(b *testing.B) {
	benchExperiment(b, "t11", "median_km_zone_0", "boundary_km_zone_1")
}

// BenchmarkTableStravaHeatmap regenerates the Strava heatmap incident [6].
func BenchmarkTableStravaHeatmap(b *testing.B) {
	benchExperiment(b, "t12", "revealed_km_k_0")
}

// BenchmarkArmsRace regenerates the ar1 adaptive-adversary matrix: four
// defense generations × four attacker generations, dominated by the
// sixteen identification passes over the defended victim captures.
func BenchmarkArmsRace(b *testing.B) {
	benchExperiment(b, "ar1", "adv_gateway", "adv_stp", "acc_d2_a2", "occ_mcc_d3")
}

// BenchmarkRunAll regenerates the presentation suite at quick scale through
// the concurrent runner, comparing the sequential baseline against a worker
// per CPU. Reports are identical in both configurations; only wall-clock
// differs. Each sub-benchmark does one untimed warmup pass so both
// configurations measure the same steady state (warm world memo), and the
// parallel run reports its speedup over the serial baseline as a custom
// metric.
//
// The sub-benchmarks carry fixed names ("serial", "parallel") with the
// worker count as a reported metric: the old workers=%d naming collided on
// single-CPU hosts (both subs became workers=1, deduped by the testing
// package to workers=1#01), which broke benchjson run-to-run diffing.
func BenchmarkRunAll(b *testing.B) {
	ids := experiments.IDs()
	opts := experiments.Options{Quick: true, Seed: 42}
	runSuite := func(b *testing.B, workers int) {
		b.Helper()
		reports, err := experiments.RunAll(context.Background(), ids, opts,
			experiments.RunAllOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != len(ids) {
			b.Fatalf("got %d reports", len(reports))
		}
	}
	var serialNsPerOp float64
	configs := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.NumCPU()},
	}
	for ci, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			runSuite(b, cfg.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSuite(b, cfg.workers)
			}
			b.ReportMetric(float64(cfg.workers), "workers")
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if ci == 0 {
				serialNsPerOp = nsPerOp
			} else if nsPerOp > 0 {
				b.ReportMetric(serialNsPerOp/nsPerOp, "speedup_vs_serial")
			}
		})
	}
}
