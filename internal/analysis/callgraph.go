package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Call-graph construction for the interprocedural engine. The graph covers
// every function and method declared (with a body) in the loaded packages.
// Edges are conservative over-approximations of "may invoke":
//
//   - a static call (direct call of a package function or a method on a
//     concrete receiver) adds an edge to the callee;
//   - any other *reference* to a function — a function value passed as an
//     argument (memoWorld's build closure parameter, sort.Slice
//     comparators), stored in a map literal (the experiment registries),
//     returned, or assigned — also adds an edge, because a referenced
//     function may be invoked by whoever receives the value;
//   - a function literal's body is attributed to the enclosing declared
//     function: its sinks and calls count as the encloser's. This is what
//     makes effects inside `memoWorld("x", func() {...})` builders visible
//     from the experiment runner that defines the closure.
//
// Unresolvable targets stay out of the graph and act as leaves: calls
// through interface methods and stored function values propagate nothing
// (the known-impure standard-library surface is caught at the call site by
// the sink tables in summary.go, so stdlib internals never need bodies).
// Function literals in package-level variable initializers have no
// enclosing declaration and are skipped; none of the certified paths use
// them for anything beyond allocation (sync.Pool New hooks).

// FuncKey canonically identifies a function or method across separately
// type-checked variants of a package. The plain and test-augmented
// compilations of one package produce distinct *types.Func objects for the
// same declaration; types.Func.FullName (e.g.
// "privmem/internal/home.Simulate", "(*privmem/internal/timeseries.Series).Sum")
// does not, so keys unify cross-package references with the package's own
// declarations.
type FuncKey string

// KeyOf returns fn's canonical graph key.
func KeyOf(fn *types.Func) FuncKey { return FuncKey(fn.FullName()) }

// CallSite is one outgoing reference from a function.
type CallSite struct {
	Callee FuncKey
	Pos    token.Pos
}

// Node is one declared function in the call graph.
type Node struct {
	Key  FuncKey
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists every function this one references (deduplicated,
	// sorted by callee key for deterministic traversal).
	Calls []CallSite
}

// CallGraph is the module-wide function graph.
type CallGraph struct {
	Nodes map[FuncKey]*Node
}

// BuildCallGraph constructs the graph over every function declared in pkgs.
// When the same declaration appears in more than one loaded package variant
// (plain and test-augmented), the first occurrence wins; bodies are
// identical, so the choice does not matter.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[FuncKey]*Node{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := KeyOf(fn)
				if _, dup := g.Nodes[key]; dup {
					continue
				}
				node := &Node{Key: key, Fn: fn, Decl: fd, Pkg: pkg}
				collectCalls(pkg.Info, fd.Body, node)
				g.Nodes[key] = node
			}
		}
	}
	return g
}

// collectCalls records every function referenced inside body (calls and
// value references alike), deduplicated and sorted.
func collectCalls(info *types.Info, body *ast.BlockStmt, node *Node) {
	seen := map[FuncKey]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		key := KeyOf(fn)
		if _, dup := seen[key]; !dup {
			seen[key] = id.Pos()
		}
		return true
	})
	node.Calls = make([]CallSite, 0, len(seen))
	for key, pos := range seen {
		node.Calls = append(node.Calls, CallSite{Callee: key, Pos: pos})
	}
	sort.Slice(node.Calls, func(i, j int) bool { return node.Calls[i].Callee < node.Calls[j].Callee })
}

// SortedNodes returns the graph's nodes in deterministic key order.
func (g *CallGraph) SortedNodes() []*Node {
	keys := g.sortedKeys()
	nodes := make([]*Node, len(keys))
	for i, k := range keys {
		nodes[i] = g.Nodes[k]
	}
	return nodes
}

// sortedKeys returns the graph's node keys in deterministic order.
func (g *CallGraph) sortedKeys() []FuncKey {
	keys := make([]FuncKey, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
