package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: privmem/internal/serve
cpu: Fake CPU @ 3.00GHz
BenchmarkReportCacheHit-8    1690336       709.5 ns/op      1104 B/op       9 allocs/op
BenchmarkReportCacheMiss-8        38    30521847 ns/op
PASS
ok  	privmem/internal/serve	3.194s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	hit := results[0]
	if hit.Name != "BenchmarkReportCacheHit-8" || hit.Iterations != 1690336 || hit.NsPerOp != 709.5 {
		t.Errorf("hit = %+v", hit)
	}
	if hit.BytesPerOp == nil || *hit.BytesPerOp != 1104 || hit.AllocsPerOp == nil || *hit.AllocsPerOp != 9 {
		t.Errorf("hit mem stats = %v/%v", hit.BytesPerOp, hit.AllocsPerOp)
	}
	miss := results[1]
	if miss.Name != "BenchmarkReportCacheMiss-8" || miss.NsPerOp != 30521847 {
		t.Errorf("miss = %+v", miss)
	}
	if miss.BytesPerOp != nil || miss.AllocsPerOp != nil {
		t.Errorf("miss should have no mem stats: %+v", miss)
	}
}

func TestParseEmptyInputIsEmptyArray(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 0.01s\n"), &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if results == nil || len(results) != 0 {
		t.Fatalf("want empty (non-null) array, got %s", out.String())
	}
}

// metricSample is verbatim `go test -bench BenchmarkFigure2Disaggregation
// -benchmem` output from this repo: three custom b.ReportMetric columns
// interleaved with the standard timing and memory columns.
const metricSample = `goos: linux
goarch: amd64
pkg: privmem
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure2Disaggregation 	       3	   1251812 ns/op	         1.199 fhmm_fridge	         0.3272 powerplay_fridge	         5.000 powerplay_wins	 1305314 B/op	    3437 allocs/op
PASS
ok  	privmem	0.558s
`

func TestParseKeepsCustomMetrics(t *testing.T) {
	results, err := Parse(strings.NewReader(metricSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkFigure2Disaggregation" || r.Iterations != 3 || r.NsPerOp != 1251812 {
		t.Errorf("timing fields = %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 1305314 || r.AllocsPerOp == nil || *r.AllocsPerOp != 3437 {
		t.Errorf("mem stats = %v/%v", r.BytesPerOp, r.AllocsPerOp)
	}
	want := map[string]float64{"fhmm_fridge": 1.199, "powerplay_fridge": 0.3272, "powerplay_wins": 5}
	if len(r.Metrics) != len(want) {
		t.Fatalf("metrics = %v, want %v", r.Metrics, want)
	}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseMetricsSurviveJSONRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(metricSample), &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(results) != 1 || results[0].Metrics["powerplay_wins"] != 5 {
		t.Fatalf("round trip lost metrics: %s", out.String())
	}
}

func TestParseRejectsMangledMetricValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 10 1 ns/op junk my_metric\n")); err == nil {
		t.Fatal("mangled metric value accepted")
	}
}

func TestParseRejectsMangledBenchmarkLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 notanumber 1 ns/op\n")); err == nil {
		t.Fatal("mangled benchmark line accepted")
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("round-tripped %d results, want 2", len(results))
	}
}

// TestRunDiff exercises the warn-only comparison mode: a fresh run against
// a baseline with one regressed, one improved, one new, and one removed
// benchmark.
func TestRunDiff(t *testing.T) {
	base := `[
  {"name": "BenchmarkStable-8", "iterations": 100, "ns_per_op": 1000},
  {"name": "BenchmarkRegressed-8", "iterations": 100, "ns_per_op": 1000},
  {"name": "BenchmarkRemoved-8", "iterations": 100, "ns_per_op": 500}
]`
	basePath := t.TempDir() + "/base.json"
	if err := writeFile(basePath, base); err != nil {
		t.Fatal(err)
	}
	freshText := `BenchmarkStable-8 100 1100 ns/op
BenchmarkRegressed-8 100 2000 ns/op
BenchmarkNew-8 100 10 ns/op
PASS
`
	var out bytes.Buffer
	if err := runDiff(basePath, 0, strings.NewReader(freshText), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"  ok: BenchmarkStable-8:",
		"warn: BenchmarkRegressed-8:",
		"warn: BenchmarkNew-8: not in baseline",
		"warn: BenchmarkRemoved-8: in baseline but not in this run",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

// TestRunDiffAllocs exercises the allocs/op column: a benchmark whose timing
// holds steady but whose allocation count grows past the guard is flagged.
func TestRunDiffAllocs(t *testing.T) {
	base := `[
  {"name": "BenchmarkLean-8", "iterations": 100, "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 10},
  {"name": "BenchmarkLeaky-8", "iterations": 100, "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 100}
]`
	basePath := t.TempDir() + "/base.json"
	if err := writeFile(basePath, base); err != nil {
		t.Fatal(err)
	}
	freshText := `BenchmarkLean-8 100 1000 ns/op 64 B/op 10 allocs/op
BenchmarkLeaky-8 100 1000 ns/op 64 B/op 150 allocs/op
PASS
`
	var out bytes.Buffer
	if err := runDiff(basePath, 0, strings.NewReader(freshText), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"  ok: BenchmarkLean-8:",
		"10 allocs/op vs 10 (1.00x)",
		"warn: BenchmarkLeaky-8:",
		"150 allocs/op vs 100 (1.50x)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

// TestRunDiffFailPct exercises the opt-in gate: with -fail-pct set, timing
// or allocation regressions past the threshold turn into an error (after all
// lines print), while clean runs still pass.
func TestRunDiffFailPct(t *testing.T) {
	base := `[
  {"name": "BenchmarkStable-8", "iterations": 100, "ns_per_op": 1000, "allocs_per_op": 10},
  {"name": "BenchmarkSlow-8", "iterations": 100, "ns_per_op": 1000}
]`
	basePath := t.TempDir() + "/base.json"
	if err := writeFile(basePath, base); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	clean := "BenchmarkStable-8 100 1050 ns/op 10 allocs/op\nBenchmarkSlow-8 100 1100 ns/op\nPASS\n"
	if err := runDiff(basePath, 25, strings.NewReader(clean), &out); err != nil {
		t.Fatalf("clean run failed: %v\n%s", err, out.String())
	}

	out.Reset()
	slow := "BenchmarkStable-8 100 1000 ns/op 10 allocs/op\nBenchmarkSlow-8 100 1500 ns/op\nPASS\n"
	if err := runDiff(basePath, 25, strings.NewReader(slow), &out); !errors.Is(err, errRegression) {
		t.Fatalf("timing regression err = %v, want errRegression", err)
	}
	if !strings.Contains(out.String(), "warn: BenchmarkSlow-8:") {
		t.Errorf("regression line missing:\n%s", out.String())
	}

	out.Reset()
	leaky := "BenchmarkStable-8 100 1000 ns/op 20 allocs/op\nBenchmarkSlow-8 100 1000 ns/op\nPASS\n"
	if err := runDiff(basePath, 25, strings.NewReader(leaky), &out); !errors.Is(err, errRegression) {
		t.Fatalf("allocs regression err = %v, want errRegression", err)
	}

	// The same allocation growth without -fail-pct stays warn-only.
	out.Reset()
	if err := runDiff(basePath, 0, strings.NewReader(leaky), &out); err != nil {
		t.Fatalf("warn-only run failed: %v", err)
	}
}

func TestRunDiffBadBaseline(t *testing.T) {
	if err := runDiff("/nonexistent/base.json", 0, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("missing baseline accepted")
	}
	basePath := t.TempDir() + "/base.json"
	if err := writeFile(basePath, "not json"); err != nil {
		t.Fatal(err)
	}
	if err := runDiff(basePath, 0, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
