package experiments_test

import (
	"testing"

	"privmem/internal/experiments"
	"privmem/internal/fleet"
	"privmem/internal/invariant/suite"
)

// suiteIDs is a small, cheap cross-section for determinism checks: a figure
// generator, an attack table, and the zk-billing table.
var suiteIDs = []string{"f1", "t1", "t6"}

// TestPropRunAllDeterministic checks the suite-determinism law across worker
// counts and seeds: RunAll must render bit-identical reports whether the
// suite runs sequentially or spread over a pool.
func TestPropRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("suite determinism sweep is not short")
	}
	for _, seed := range []int64{0, 1, 42} {
		opts := experiments.Options{Seed: seed, SeedSet: true, Quick: true}
		if err := suite.RunAllDeterministic(suiteIDs, opts, []int{1, 2, 5}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPropRunAllMemoTransparent checks the memo-transparency law: the
// shared-world memo must not change a single rendered byte, whether the
// suite runs sequentially or on a pool.
func TestPropRunAllMemoTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("memo transparency sweep is not short")
	}
	for _, seed := range []int64{0, 42} {
		opts := experiments.Options{Seed: seed, SeedSet: true, Quick: true}
		if err := suite.RunAllMemoTransparent(suiteIDs, opts, []int{1, 3}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPropArmsRaceLaws checks the ar1 structural laws — gateway-family
// defense-cost monotonicity and the attacker-advantage bound (a gen-N
// attacker is never worse than gen-0 on gen-N defended traffic).
func TestPropArmsRaceLaws(t *testing.T) {
	if testing.Short() {
		t.Skip("arms race sweep is not short")
	}
	for _, seed := range []int64{0, 42} {
		opts := experiments.Options{Seed: seed, SeedSet: true, Quick: true}
		if err := suite.ArmsRaceLaws(opts); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPropArmsRaceDeterministic checks that the arms-race matrix renders
// bit-identically across worker counts and with the world memo on or off:
// the defended captures, the retrained adversaries, and the STP coin flips
// are all pure functions of (seed, quick).
func TestPropArmsRaceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("arms race sweep is not short")
	}
	ids := []string{"ar1", "t8"}
	opts := experiments.Options{Seed: 42, SeedSet: true, Quick: true}
	if err := suite.RunAllDeterministic(ids, opts, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := suite.RunAllMemoTransparent(ids, opts, []int{2}); err != nil {
		t.Fatal(err)
	}
}

// TestPropOnlineNIOMEquivalent replays a recorded metered home through the
// streaming NIOM detector in both modes and requires bit-identity with the
// batch sliding detectors at every window boundary.
func TestPropOnlineNIOMEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("online equivalence sweep is not short")
	}
	for _, seed := range []int64{0, 7, 42} {
		if err := suite.OnlineNIOMEquivalent(seed); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPropOnlineFHMMEquivalent pins windowed and streaming factorial-HMM
// decoding to exact batch Viterbi, bit for bit, across window sizes.
func TestPropOnlineFHMMEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("online equivalence sweep is not short")
	}
	for _, seed := range []int64{0, 13, 42} {
		if err := suite.OnlineFHMMEquivalent(seed); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPropOnlineFingerprintEquivalent pins the streaming device identifier
// and occupancy detector to their batch counterparts on a recorded capture.
func TestPropOnlineFingerprintEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("online equivalence sweep is not short")
	}
	for _, seed := range []int64{5, 42} {
		if err := suite.OnlineFingerprintEquivalent(seed); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPropFleetDeterministic checks the fleet tentpole law end to end: the
// population summary renders bit-identically at every worker count, and the
// fl1 experiment built on it passes the RunAll determinism law.
func TestPropFleetDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep is not short")
	}
	spec := fleet.DefaultSpec()
	spec.Homes, spec.Days, spec.Seed = 150, 2, 17
	if err := suite.FleetDeterministic(spec, []int{1, 3, 7}); err != nil {
		t.Fatal(err)
	}
	opts := experiments.Options{Seed: 42, SeedSet: true, Quick: true}
	if err := suite.RunAllDeterministic([]string{"fl1"}, opts, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRunAllDeterministicErrors checks the law's error half: a suite
// containing an unknown id must fail identically — same error text, same
// partial results — under every worker count.
func TestPropRunAllDeterministicErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("suite determinism sweep is not short")
	}
	ids := []string{"f1", "no-such-experiment", "t6"}
	opts := experiments.Options{Seed: 7, SeedSet: true, Quick: true}
	if err := suite.RunAllDeterministic(ids, opts, []int{1, 3}); err != nil {
		t.Fatal(err)
	}
}
