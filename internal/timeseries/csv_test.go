package timeseries

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	s, _ := FromValues(testStart, 5*time.Minute, []float64{1.5, -2, 0, 1e6, 0.000125})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(s.Start) || got.Step != s.Step || got.Len() != s.Len() {
		t.Fatalf("shape changed: %v", got)
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Errorf("value %d: %v != %v", i, got.Values[i], s.Values[i])
		}
	}
}

// TestCSVRoundTripNonMinuteSteps checks the inferred step survives a
// round-trip at resolutions other than the 1-minute default, including one
// (90s) that is not a whole number of minutes.
func TestCSVRoundTripNonMinuteSteps(t *testing.T) {
	for _, step := range []time.Duration{time.Second, 10 * time.Second, 90 * time.Second, time.Hour, 6 * time.Hour} {
		s, err := FromValues(testStart, step, []float64{3, 1, 4, 1, 5})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("step %v: %v", step, err)
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("step %v: %v", step, err)
		}
		if got.Step != step {
			t.Errorf("step %v round-tripped as %v", step, got.Step)
		}
		if !got.Start.Equal(s.Start) || got.Len() != s.Len() {
			t.Errorf("step %v: shape changed: %v", step, got)
		}
	}
}

// TestCSVSingleRow covers the single-row fallback: with one row there is no
// step to infer, and ReadCSV documents a 1-minute default.
func TestCSVSingleRow(t *testing.T) {
	in := "timestamp,value\n2017-06-01T00:00:00Z,42\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Values[0] != 42 {
		t.Errorf("got %v", got.Values)
	}
	if got.Step != time.Minute {
		t.Errorf("single-row fallback step = %v, want the documented 1-minute default", got.Step)
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "bad header", in: "a,b\n"},
		{name: "empty body", in: "timestamp,value\n"},
		{name: "bad time", in: "timestamp,value\nnot-a-time,1\n"},
		{name: "bad value", in: "timestamp,value\n2017-06-01T00:00:00Z,xyz\n"},
		{name: "wrong columns", in: "timestamp,value\n2017-06-01T00:00:00Z,1,2\n"},
		{name: "non-uniform", in: "timestamp,value\n2017-06-01T00:00:00Z,1\n2017-06-01T00:01:00Z,2\n2017-06-01T00:03:00Z,3\n"},
		{name: "non-increasing", in: "timestamp,value\n2017-06-01T00:01:00Z,1\n2017-06-01T00:00:00Z,2\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("malformed input accepted")
			}
		})
	}
	if _, err := ReadCSV(strings.NewReader("timestamp,value\n")); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty body error = %v", err)
	}
}
