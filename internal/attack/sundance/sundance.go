// Package sundance implements SunDance-style black-box solar disaggregation
// [21]: separating a net meter's single time series (consumption minus
// behind-the-meter solar generation) into its consumption and generation
// components, using only public knowledge — the clear-sky solar model and
// public weather-station data.
//
// The privacy significance (§II-B of the paper): utilities release
// "anonymized" net-meter datasets; SunDance lets an analytics company first
// recover the generation stream (which localizes the home via SunSpot or
// Weatherman) and then recover the consumption stream (which profiles the
// occupants via NIOM and NILM). Anonymized net-meter data is therefore not
// anonymous at all.
package sundance

import (
	"errors"
	"fmt"
	"math"
	"time"

	"privmem/internal/attack/weatherman"
	"privmem/internal/stats"
	"privmem/internal/sun"
	"privmem/internal/timeseries"
	"privmem/internal/weather"
)

// ErrBadInput indicates an unusable net-meter trace.
var ErrBadInput = errors.New("sundance: invalid input")

// Reference panel assumed by the attacker (identical role to SunSpot's
// forward model).
const (
	refTiltDeg  = 25.0
	refAzimuth  = 180.0
	refDiffuse  = 0.16
	cloudAtten  = 0.78
	capQuantile = 0.98
)

// Config parameterizes the disaggregation.
type Config struct {
	// MinExportW is the export magnitude that confirms solar presence
	// (default 100 W).
	MinExportW float64
	// Weatherman configures the embedded localization step.
	Weatherman weatherman.Config
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config {
	return Config{MinExportW: 100, Weatherman: weatherman.DefaultConfig()}
}

// Result is the output of a disaggregation.
type Result struct {
	// Generation and Consumption are the recovered component series.
	Generation, Consumption *timeseries.Series
	// CapacityW is the estimated array capacity (nameplate-scale).
	CapacityW float64
	// Lat and Lon are the location estimate used for the solar model.
	Lat, Lon float64
}

// Disaggregate separates an hourly net-meter trace into generation and
// consumption, given the public weather-station dataset.
func Disaggregate(net *timeseries.Series, stations []weather.Station, cfg Config) (*Result, error) {
	if cfg.MinExportW == 0 {
		cfg.MinExportW = DefaultConfig().MinExportW
	}
	if cfg.MinExportW < 0 {
		return nil, fmt.Errorf("%w: min export %v W", ErrBadInput, cfg.MinExportW)
	}
	if net.Step != time.Hour {
		resampled, err := net.Resample(time.Hour)
		if err != nil {
			return nil, fmt.Errorf("sundance: %w", err)
		}
		net = resampled
	}
	if len(stations) == 0 {
		return nil, fmt.Errorf("%w: no stations", ErrBadInput)
	}

	// Export proxy: hours where the home pushed power into the grid are
	// lower bounds on generation.
	export := net.Clone().Map(func(v float64) float64 { return math.Max(0, -v) })
	if export.Max() < cfg.MinExportW {
		return nil, fmt.Errorf("%w: no solar export detected (max %0.f W)", ErrBadInput, export.Max())
	}

	// Locate the site from the export stream's weather signature, then use
	// the best station's cloud history to drive the generation model.
	loc, err := weatherman.Localize(export, stations, cfg.Weatherman)
	if err != nil {
		return nil, fmt.Errorf("sundance: localize: %w", err)
	}
	best, _, err := weather.NearestStation(stations, loc.Lat, loc.Lon)
	if err != nil {
		return nil, fmt.Errorf("sundance: %w", err)
	}

	// Clear-sky reference output per hour at the estimated location.
	model := timeseries.MustNew(net.Start, net.Step, net.Len())
	for i := range model.Values {
		model.Values[i] = sun.PlateOutput(model.TimeAt(i).Add(30*time.Minute),
			loc.Lat, loc.Lon, refTiltDeg, refAzimuth, refDiffuse)
	}
	peakModel := model.Max()
	if peakModel <= 0 {
		return nil, fmt.Errorf("%w: solar model produced no output", ErrBadInput)
	}

	// Capacity: near-peak clear hours bound generation from below by the
	// export plus an (unknown) baseline consumption; the high quantile of
	// export/model ratios is a robust nameplate estimate.
	var ratios []float64
	for i, v := range export.Values {
		cloud := best.Cloud.At(export.TimeAt(i))
		m := model.Values[i] * (1 - cloudAtten*cloud)
		if model.Values[i] > 0.6*peakModel && cloud < 0.25 && v > cfg.MinExportW {
			ratios = append(ratios, v/m)
		}
	}
	if len(ratios) < 5 {
		return nil, fmt.Errorf("%w: only %d clear near-peak export hours", ErrBadInput, len(ratios))
	}
	scale := stats.Quantile(ratios, capQuantile)

	gen := timeseries.MustNew(net.Start, net.Step, net.Len())
	for i := range gen.Values {
		cloud := best.Cloud.At(gen.TimeAt(i))
		gen.Values[i] = scale * model.Values[i] * (1 - cloudAtten*cloud)
	}
	cons, err := net.Add(gen)
	if err != nil {
		return nil, fmt.Errorf("sundance: %w", err)
	}
	cons.Clamp(0, math.Inf(1))

	return &Result{
		Generation:  gen,
		Consumption: cons,
		CapacityW:   scale * peakModel,
		Lat:         loc.Lat,
		Lon:         loc.Lon,
	}, nil
}
