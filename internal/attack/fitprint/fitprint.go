// Package fitprint implements the §II-C fitness-tracker attacks: inferring
// a user's home location from the start/end points of their recorded runs,
// detecting irregular heart rhythms from heart-rate streams (the Apple
// Watch AFib scenario [23]), and the Strava-style heatmap attack [6] that
// exposes sensitive facilities from "anonymous" aggregate activity maps.
// The privacy-zone defense (and its known weakness) lives here too, since
// it is evaluated against these attacks.
package fitprint

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"privmem/internal/fitsim"
	"privmem/internal/metrics"
	"privmem/internal/stats"
)

// ErrBadInput indicates unusable inputs.
var ErrBadInput = errors.New("fitprint: invalid input")

// InferHome estimates a user's home from their activities' start and end
// points: endpoints are clustered into 200 m cells, and the densest
// cluster's median is the estimate. Runs overwhelmingly begin and end at
// home — the leak the paper describes — and the clustering step keeps
// drive-to-trailhead runs from diluting the estimate.
func InferHome(acts []fitsim.Activity) (lat, lon float64, err error) {
	if len(acts) == 0 {
		return 0, 0, fmt.Errorf("%w: no activities", ErrBadInput)
	}
	type pt struct{ lat, lon float64 }
	var pts []pt
	for _, a := range acts {
		if len(a.Points) == 0 {
			continue
		}
		first, last := a.Points[0], a.Points[len(a.Points)-1]
		pts = append(pts, pt{first.Lat, first.Lon}, pt{last.Lat, last.Lon})
	}
	if len(pts) == 0 {
		return 0, 0, fmt.Errorf("%w: activities carry no points", ErrBadInput)
	}
	// Densest 200 m cell wins.
	const cellKm = 0.2
	cells := map[[2]int][]pt{}
	var bestKey [2]int
	for _, p := range pts {
		key := [2]int{
			int(math.Floor(p.lat * 111.2 / cellKm)),
			int(math.Floor(p.lon * 111.2 * math.Cos(p.lat*math.Pi/180) / cellKm)),
		}
		cells[key] = append(cells[key], p)
		if len(cells[key]) > len(cells[bestKey]) {
			bestKey = key
		}
	}
	// Median over the winning cell and its neighbours (a home on a cell
	// boundary splits across cells).
	var lats, lons []float64
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, p := range cells[[2]int{bestKey[0] + dx, bestKey[1] + dy}] {
				lats = append(lats, p.lat)
				lons = append(lons, p.lon)
			}
		}
	}
	return stats.Median(lats), stats.Median(lons), nil
}

// InferHomeBoundary is the counter-attack to privacy zones: each activity's
// first visible point sits where the track resumed at the zone boundary,
// and because runs leave home in varied directions those points ring the
// true home. The coordinate-wise median of first points therefore lands
// near the zone center — the home the zone was meant to hide.
func InferHomeBoundary(acts []fitsim.Activity) (lat, lon float64, err error) {
	if len(acts) == 0 {
		return 0, 0, fmt.Errorf("%w: no activities", ErrBadInput)
	}
	var lats, lons []float64
	for _, a := range acts {
		if len(a.Points) == 0 {
			continue
		}
		lats = append(lats, a.Points[0].Lat)
		lons = append(lons, a.Points[0].Lon)
	}
	if len(lats) == 0 {
		return 0, 0, fmt.Errorf("%w: activities carry no points", ErrBadInput)
	}
	return stats.Median(lats), stats.Median(lons), nil
}

// IrregularRhythm reports whether a user's heart-rate streams show the
// beat-to-beat irregularity signature, using the mean RMSSD (root mean
// square of successive differences) across activities against a fixed
// threshold — the screening statistic behind consumer AFib detection.
func IrregularRhythm(acts []fitsim.Activity) (score float64, flagged bool, err error) {
	if len(acts) == 0 {
		return 0, false, fmt.Errorf("%w: no activities", ErrBadInput)
	}
	var scores []float64
	for _, a := range acts {
		if len(a.HeartRate) < 8 {
			continue
		}
		var ss float64
		for i := 1; i < len(a.HeartRate); i++ {
			d := a.HeartRate[i] - a.HeartRate[i-1]
			ss += d * d
		}
		scores = append(scores, math.Sqrt(ss/float64(len(a.HeartRate)-1)))
	}
	if len(scores) == 0 {
		return 0, false, fmt.Errorf("%w: heart-rate streams too short", ErrBadInput)
	}
	score = stats.Mean(scores)
	const rmssdThreshold = 18 // BPM: healthy workout variability sits well below
	return score, score > rmssdThreshold, nil
}

// Hotspot is one revealed cell of the aggregate heatmap.
type Hotspot struct {
	// Lat and Lon are the cell center.
	Lat, Lon float64
	// Users counts distinct contributors.
	Users int
	// Points counts GPS samples.
	Points int
}

// Heatmap aggregates every activity's points into cells of the given size
// (km) and returns the cells sorted by point count, descending — the public
// "global activity map" of the Strava incident. minUsers suppresses cells
// with fewer distinct contributors (the k-anonymity fix Strava adopted);
// zero disables suppression.
func Heatmap(world *fitsim.World, cellKm float64, minUsers int) ([]Hotspot, error) {
	if cellKm <= 0 {
		return nil, fmt.Errorf("%w: cell size %v km", ErrBadInput, cellKm)
	}
	type cell struct {
		users  map[int]bool
		points int
		lat    float64
		lon    float64
		n      int
	}
	cells := map[[2]int]*cell{}
	for _, a := range world.Activities {
		for _, p := range a.Points {
			key := [2]int{
				int(math.Floor(p.Lat * 111.2 / cellKm)),
				int(math.Floor(p.Lon * 111.2 * math.Cos(p.Lat*math.Pi/180) / cellKm)),
			}
			c, ok := cells[key]
			if !ok {
				c = &cell{users: map[int]bool{}}
				cells[key] = c
			}
			c.users[a.User] = true
			c.points++
			c.lat += p.Lat
			c.lon += p.Lon
			c.n++
		}
	}
	var out []Hotspot
	for _, c := range cells {
		if minUsers > 0 && len(c.users) < minUsers {
			continue
		}
		out = append(out, Hotspot{
			Lat:    c.lat / float64(c.n),
			Lon:    c.lon / float64(c.n),
			Users:  len(c.users),
			Points: c.points,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Points != out[j].Points {
			return out[i].Points > out[j].Points
		}
		if out[i].Lat != out[j].Lat {
			return out[i].Lat < out[j].Lat
		}
		return out[i].Lon < out[j].Lon
	})
	return out, nil
}

// RevealedKm returns how closely the heatmap's densest remote hotspot pins
// a secret location: the distance from the target to the nearest of the top
// k hotspots.
func RevealedKm(hotspots []Hotspot, topK int, lat, lon float64) float64 {
	best := math.Inf(1)
	for i, h := range hotspots {
		if i >= topK {
			break
		}
		if d := metrics.HaversineKm(lat, lon, h.Lat, h.Lon); d < best {
			best = d
		}
	}
	return best
}

// ApplyPrivacyZone returns copies of the activities with every point within
// radiusKm of (lat, lon) removed — the "privacy zone" feature fitness apps
// offer. Activities left with fewer than two points are dropped.
func ApplyPrivacyZone(acts []fitsim.Activity, lat, lon, radiusKm float64) ([]fitsim.Activity, error) {
	if radiusKm <= 0 {
		return nil, fmt.Errorf("%w: radius %v km", ErrBadInput, radiusKm)
	}
	var out []fitsim.Activity
	for _, a := range acts {
		trimmed := fitsim.Activity{User: a.User, Start: a.Start}
		for i, p := range a.Points {
			if metrics.HaversineKm(lat, lon, p.Lat, p.Lon) < radiusKm {
				continue
			}
			trimmed.Points = append(trimmed.Points, p)
			trimmed.HeartRate = append(trimmed.HeartRate, a.HeartRate[i])
		}
		if len(trimmed.Points) >= 2 {
			out = append(out, trimmed)
		}
	}
	return out, nil
}
