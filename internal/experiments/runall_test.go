package experiments

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func TestOptionsSeedSentinel(t *testing.T) {
	if got := (Options{}).seed(); got != 42 {
		t.Errorf("default seed = %d, want 42", got)
	}
	if got := (Options{Seed: 7}).seed(); got != 7 {
		t.Errorf("explicit seed = %d, want 7", got)
	}
	if got := (Options{Seed: 0, SeedSet: true}).seed(); got != 0 {
		t.Errorf("SeedSet zero seed = %d, want 0", got)
	}
}

func TestForExperimentDerivation(t *testing.T) {
	base := Options{Seed: 42, Quick: true}
	d1 := base.ForExperiment("f1")
	d2 := base.ForExperiment("f1")
	if d1 != d2 {
		t.Errorf("derivation not deterministic: %+v vs %+v", d1, d2)
	}
	if !d1.SeedSet {
		t.Error("derived options must set SeedSet")
	}
	if !d1.Quick {
		t.Error("derivation must preserve Quick")
	}
	if d1.Seed == base.Seed {
		t.Error("derived seed equals base seed")
	}
	if other := base.ForExperiment("f2"); other.Seed == d1.Seed {
		t.Errorf("f1 and f2 derived the same seed %d", d1.Seed)
	}
	// The zero-seed default and an explicit 42 must derive identically,
	// while an explicit zero (SeedSet) is a different base.
	if a, b := (Options{}).ForExperiment("t1"), (Options{Seed: 42}).ForExperiment("t1"); a != b {
		t.Errorf("default and explicit 42 derive differently: %+v vs %+v", a, b)
	}
	if a, b := (Options{SeedSet: true}).ForExperiment("t1"), (Options{Seed: 42}).ForExperiment("t1"); a == b {
		t.Error("explicit zero seed derived the same stream as 42")
	}
}

// TestRunAllDeterministicAcrossWorkers runs the full registry at quick
// scale with workers=1 (the sequential baseline), 2, and NumCPU, and
// asserts the reports — structs and rendered bytes — are identical. Run
// under -race (make check) this is also the suite's race-detector
// coverage.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry concurrency sweep")
	}
	ids := AllIDs()
	opts := Options{Quick: true, Seed: 42}

	baseline, err := RunAll(context.Background(), ids, opts, RunAllOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range baseline {
		if rep == nil {
			t.Fatalf("baseline %s is nil", ids[i])
		}
	}
	// The workers=1 pool must agree with a plain sequential Run over the
	// same derived options (spot-checked on one id to keep the test cheap).
	direct, err := Run("f1", opts.ForExperiment("f1"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := direct.Render(), baseline[0].Render(); got != want {
		t.Errorf("RunAll(workers=1) f1 differs from sequential Run:\n%s\nvs\n%s", want, got)
	}

	for _, workers := range []int{2, runtime.NumCPU()} {
		got, err := RunAll(context.Background(), ids, opts, RunAllOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ids {
			if !reflect.DeepEqual(baseline[i], got[i]) {
				t.Errorf("workers=%d: report %s differs from sequential baseline", workers, ids[i])
			}
			if baseline[i].Render() != got[i].Render() {
				t.Errorf("workers=%d: rendered %s not byte-identical", workers, ids[i])
			}
		}
	}
}

func TestRunAllCollectsErrors(t *testing.T) {
	ids := []string{"zz", "f1", "qq"}
	reports, err := RunAll(context.Background(), ids, Options{Quick: true, Seed: 42}, RunAllOptions{Workers: 2})
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("error = %v, want ErrUnknown", err)
	}
	for _, id := range []string{"zz", "qq"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("joined error does not name %s: %v", id, err)
		}
	}
	if reports[0] != nil || reports[2] != nil {
		t.Error("failed experiments must leave nil report slots")
	}
	if reports[1] == nil || reports[1].ID != "f1" {
		t.Errorf("f1 should still run despite sibling failures: %+v", reports[1])
	}
}

func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := RunAll(ctx, []string{"f1", "t1"}, Options{Quick: true}, RunAllOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	for i, rep := range reports {
		if rep != nil {
			t.Errorf("report %d generated after cancellation", i)
		}
	}
}

func TestRunAllEmpty(t *testing.T) {
	reports, err := RunAll(context.Background(), nil, Options{}, RunAllOptions{})
	if err != nil || len(reports) != 0 {
		t.Errorf("RunAll(nil ids) = %v, %v", reports, err)
	}
}

func TestCacheKeyCanonicalizesSeed(t *testing.T) {
	// {Seed: 0} defaults to 42, so it must share a key with an explicit 42.
	a := Options{}.CacheKey("f1")
	b := Options{Seed: 42, SeedSet: true}.CacheKey("f1")
	if a != b {
		t.Errorf("default-seed key %q != explicit-42 key %q", a, b)
	}
	distinct := map[string]string{
		"literal zero seed": Options{SeedSet: true}.CacheKey("f1"),
		"other seed":        Options{Seed: 7}.CacheKey("f1"),
		"quick":             Options{Quick: true}.CacheKey("f1"),
		"other id":          Options{}.CacheKey("t1"),
	}
	for name, k := range distinct {
		if k == a {
			t.Errorf("%s collides with the base key %q", name, a)
		}
	}
}

func TestRunContext(t *testing.T) {
	if _, err := RunContext(context.Background(), "zz", Options{}); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown id error = %v", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(cancelled, "f1", Options{Quick: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled error = %v", err)
	}
	rep, err := RunContext(context.Background(), "t6", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same options must reproduce the same report as the plain Run path.
	plain, err := Run("t6", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Render() != plain.Render() {
		t.Error("RunContext output differs from Run for identical options")
	}
}
