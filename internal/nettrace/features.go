package nettrace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"privmem/internal/stats"
)

// Features summarizes one device's traffic over one analysis window — the
// view a passive observer extracts from encrypted-flow metadata.
type Features struct {
	// Device is the LAN identity.
	Device string
	// WindowStart is the window's first instant.
	WindowStart time.Time
	// Flows counts flow records in the window.
	Flows int
	// BytesUp and BytesDown are total volumes.
	BytesUp, BytesDown float64
	// DistinctEndpoints counts unique remote hosts.
	DistinctEndpoints int
	// MeanGapS is the mean inter-flow gap in seconds. A single-flow window
	// observes no gap at all; its true gap is right-censored at the window
	// length, so MeanGapS reports the window length rather than 0 — a zero
	// would alias a sparse device with a burst of simultaneous flows.
	MeanGapS float64
	// GapCV is the coefficient of variation of inter-flow gaps: near zero
	// for metronomic heartbeats, large for bursty event traffic.
	GapCV float64
	// MaxFlowUp is the largest single upstream flow.
	MaxFlowUp float64
}

// Vector returns the feature vector used by classifiers. Volumes are
// log-compressed: they span six orders of magnitude across device classes.
func (f Features) Vector() []float64 {
	return f.AppendVector(make([]float64, 0, FeatureDim))
}

// AppendVector appends the feature vector to dst and returns it — the
// allocation-free form of Vector for hot classifier loops that reuse one
// buffer across windows.
func (f Features) AppendVector(dst []float64) []float64 {
	return append(dst,
		math.Log1p(float64(f.Flows)),
		math.Log1p(f.BytesUp),
		math.Log1p(f.BytesDown),
		math.Log1p(float64(f.DistinctEndpoints)),
		math.Log1p(f.MeanGapS),
		f.GapCV,
		math.Log1p(f.MaxFlowUp),
	)
}

// FeatureDim is the length of Features.Vector.
const FeatureDim = 7

// WindowIndex returns the index of the window of the given width covering t
// in a tiling anchored at start, flooring for instants before start: the
// second before start is window -1, never window 0. Plain integer division
// truncates toward zero, which would fold the whole (start-width, start)
// interval onto the first genuine window — the same defect the
// Series.IndexOf flooring fix removed from the energy path.
func WindowIndex(start, t time.Time, width time.Duration) int {
	d := t.Sub(start)
	w := d / width
	if d < 0 && d%width != 0 {
		w--
	}
	return int(w)
}

// ExtractFeatures buckets a capture into fixed windows per device and
// summarizes each non-empty window.
//
// The kernel is allocation-shaped around the dominant producers (Simulate
// and Shape emit time-sorted records): record indices are grouped per device
// into one shared slab, and a device whose subsequence is already
// time-sorted is summarized by a single run walk — window indices are then
// nondecreasing, so each window is a contiguous run and its aggregates
// accumulate in original record order, exactly like the naive bucketing
// kernel. Devices whose records arrive out of order (possible for captures
// read back via ReadCapture) take the naive per-window bucketing path, so
// results are bit-identical either way.
func ExtractFeatures(cap *Capture, window time.Duration) (map[string][]Features, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: window %v", ErrBadConfig, window)
	}
	recs := cap.Records

	// Group record indices by device in record order, carving per-device
	// slices out of one slab sized by a counting pass.
	counts := make(map[string]int, 16)
	for i := range recs {
		counts[recs[i].Device]++
	}
	slab := make([]int32, 0, len(recs))
	byDev := make(map[string][]int32, len(counts))
	for dev, n := range counts {
		o := len(slab)
		slab = slab[:o+n]
		byDev[dev] = slab[o : o : o+n]
	}
	for i := range recs {
		byDev[recs[i].Device] = append(byDev[recs[i].Device], int32(i))
	}

	out := make(map[string][]Features, len(byDev))
	sc := &featureScratch{endpoints: make(map[string]struct{}, 16)}
	for dev, idx := range byDev {
		sorted := true
		for k := 1; k < len(idx); k++ {
			if recs[idx[k]].Time.Before(recs[idx[k-1]].Time) {
				sorted = false
				break
			}
		}
		if sorted {
			out[dev] = extractSortedDevice(cap, dev, idx, window, sc)
		} else {
			out[dev] = extractUnsortedDevice(cap, dev, idx, window)
		}
	}
	return out, nil
}

// featureScratch is the per-call working set extractSortedDevice reuses
// across devices and windows.
type featureScratch struct {
	gaps      []float64
	endpoints map[string]struct{}
}

// summarizeWindow folds one window's gap statistics into f. A single-flow
// window observes no gap at all; its true gap is right-censored at the
// window length, so MeanGapS reports the window length rather than 0 — a
// zero would alias a sparse device with a burst of simultaneous flows.
// GapCV stays 0 there: no variation was observed.
func summarizeWindow(f *Features, gaps []float64, window time.Duration) {
	if len(gaps) > 0 {
		f.MeanGapS = stats.Mean(gaps)
		if f.MeanGapS > 0 {
			f.GapCV = stats.Std(gaps) / f.MeanGapS
		}
	} else {
		f.MeanGapS = window.Seconds()
	}
}

// extractSortedDevice summarizes a device whose record subsequence is
// time-sorted: windows are contiguous runs of the index slice, visited in
// ascending window order, with all aggregates accumulated in record order.
func extractSortedDevice(cap *Capture, dev string, idx []int32, window time.Duration, sc *featureScratch) []Features {
	recs := cap.Records
	var out []Features
	for lo := 0; lo < len(idx); {
		w := WindowIndex(cap.Start, recs[idx[lo]].Time, window)
		hi := lo + 1
		for hi < len(idx) && WindowIndex(cap.Start, recs[idx[hi]].Time, window) == w {
			hi++
		}
		f := Features{
			Device:      dev,
			WindowStart: cap.Start.Add(time.Duration(w) * window),
			Flows:       hi - lo,
		}
		clear(sc.endpoints)
		sc.gaps = sc.gaps[:0]
		for k := lo; k < hi; k++ {
			r := &recs[idx[k]]
			f.BytesUp += float64(r.BytesUp)
			f.BytesDown += float64(r.BytesDown)
			f.MaxFlowUp = math.Max(f.MaxFlowUp, float64(r.BytesUp))
			sc.endpoints[r.Endpoint] = struct{}{}
			if k > lo {
				sc.gaps = append(sc.gaps, r.Time.Sub(recs[idx[k-1]].Time).Seconds())
			}
		}
		f.DistinctEndpoints = len(sc.endpoints)
		summarizeWindow(&f, sc.gaps, window)
		out = append(out, f)
		lo = hi
	}
	return out
}

// extractUnsortedDevice is the naive bucketing kernel, kept verbatim for
// devices whose records are not time-sorted: per-window aggregates
// accumulate in record order, then each window's times are sorted for the
// gap statistics.
func extractUnsortedDevice(cap *Capture, dev string, idx []int32, window time.Duration) []Features {
	recs := cap.Records
	type bucket struct {
		times     []time.Time
		up, down  float64
		endpoints map[string]bool
		maxUp     float64
	}
	byWin := map[int]*bucket{}
	for _, i := range idx {
		r := &recs[i]
		w := WindowIndex(cap.Start, r.Time, window)
		b, ok := byWin[w]
		if !ok {
			b = &bucket{endpoints: map[string]bool{}}
			byWin[w] = b
		}
		b.times = append(b.times, r.Time)
		b.up += float64(r.BytesUp)
		b.down += float64(r.BytesDown)
		b.endpoints[r.Endpoint] = true
		b.maxUp = math.Max(b.maxUp, float64(r.BytesUp))
	}
	wins := make([]int, 0, len(byWin))
	for w := range byWin {
		wins = append(wins, w)
	}
	sort.Ints(wins)
	out := make([]Features, 0, len(wins))
	for _, w := range wins {
		b := byWin[w]
		sort.Slice(b.times, func(i, j int) bool { return b.times[i].Before(b.times[j]) })
		var gaps []float64
		for i := 1; i < len(b.times); i++ {
			gaps = append(gaps, b.times[i].Sub(b.times[i-1]).Seconds())
		}
		f := Features{
			Device:            dev,
			WindowStart:       cap.Start.Add(time.Duration(w) * window),
			Flows:             len(b.times),
			BytesUp:           b.up,
			BytesDown:         b.down,
			DistinctEndpoints: len(b.endpoints),
			MaxFlowUp:         b.maxUp,
		}
		summarizeWindow(&f, gaps, window)
		out = append(out, f)
	}
	return out
}
