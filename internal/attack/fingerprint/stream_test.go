package fingerprint

import (
	"testing"
	"time"

	"privmem/internal/nettrace"
)

// identificationsEqual compares two Identifications field by field.
func identificationsEqual(a, b *Identification) bool {
	if a.Accuracy != b.Accuracy || a.DroppedDevices != b.DroppedDevices ||
		len(a.Predicted) != len(b.Predicted) || len(a.PerClass) != len(b.PerClass) ||
		len(a.DroppedClasses) != len(b.DroppedClasses) {
		return false
	}
	for dev, c := range a.Predicted {
		if b.Predicted[dev] != c {
			return false
		}
	}
	for class, r := range a.PerClass {
		if b.PerClass[class] != r {
			return false
		}
	}
	return true
}

// TestStreamIdentifierMatchesIdentify pins the online identifier to batch
// Identify bit for bit: same predictions, same accuracy, same per-class
// recall, over a victim capture with a compromise in it.
func TestStreamIdentifierMatchesIdentify(t *testing.T) {
	clf, err := Train(labCapture(t, 21), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vcfg := nettrace.DefaultConfig(22)
	vcfg.Compromises = []nettrace.Compromise{
		{Device: "camera-01", Kind: nettrace.CompromiseScan,
			At: vcfg.Start.Add(30 * time.Hour)},
	}
	victim, err := nettrace.Simulate(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Identify(clf, victim)
	if err != nil {
		t.Fatal(err)
	}

	s := NewStreamIdentifier(clf, victim.Start)
	var windows int
	for _, r := range victim.Records {
		if wc, ok, err := s.Observe(r); err != nil {
			t.Fatal(err)
		} else if ok {
			windows++
			if wc.Device != r.Device {
				t.Fatalf("window attributed to %q, record device %q", wc.Device, r.Device)
			}
		}
	}
	got, err := s.Finalize(victim)
	if err != nil {
		t.Fatal(err)
	}
	if windows == 0 {
		t.Fatal("stream emitted no classified windows")
	}
	if !identificationsEqual(got, want) {
		t.Fatalf("stream identification differs from batch:\n got %+v\nwant %+v", got, want)
	}
}

// TestStreamIdentifierShardedMatchesSerial checks the sharding claim: devices
// split across independent identifiers, votes merged by running Finalize on
// an identifier that saw every record, equals any per-device partition. The
// per-device independence makes this trivially true; the test guards against
// hidden cross-device state creeping in.
func TestStreamIdentifierShardedMatchesSerial(t *testing.T) {
	clf, err := Train(labCapture(t, 23), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := nettrace.Simulate(nettrace.DefaultConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	serial := NewStreamIdentifier(clf, victim.Start)
	shards := []*StreamIdentifier{
		NewStreamIdentifier(clf, victim.Start),
		NewStreamIdentifier(clf, victim.Start),
		NewStreamIdentifier(clf, victim.Start),
	}
	for _, r := range victim.Records {
		if _, _, err := serial.Observe(r); err != nil {
			t.Fatal(err)
		}
		shard := shards[int(hashDev(r.Device))%len(shards)]
		if _, _, err := shard.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := serial.Finalize(victim)
	if err != nil {
		t.Fatal(err)
	}
	// Merge shard votes into a fresh identifier and finalize.
	merged := NewStreamIdentifier(clf, victim.Start)
	for _, s := range shards {
		for _, a := range s.accs {
			if f, ok := a.Flush(); ok {
				s.vote(f)
			}
		}
		for dev, votes := range s.votes {
			m, ok := merged.votes[dev]
			if !ok {
				m = map[nettrace.Class]int{}
				merged.votes[dev] = m
			}
			for class, n := range votes {
				m[class] += n
			}
		}
	}
	got, err := merged.Finalize(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !identificationsEqual(got, want) {
		t.Fatalf("sharded identification differs from serial:\n got %+v\nwant %+v", got, want)
	}
}

// hashDev is a tiny deterministic device hash for shard assignment in tests.
func hashDev(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// TestOccupancyStreamMatchesBatch pins the online occupancy detector to
// InferOccupancy value for value, including event-free windows.
func TestOccupancyStreamMatchesBatch(t *testing.T) {
	victim, err := nettrace.Simulate(nettrace.DefaultConfig(25))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOccupancyConfig()
	want, err := InferOccupancy(victim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := InferOccupancyStream(victim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || !got.Start.Equal(want.Start) || got.Step != want.Step {
		t.Fatalf("shape mismatch: got %d@%v, want %d@%v", got.Len(), got.Step, want.Len(), want.Step)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("window %d: stream %v != batch %v", i, got.Values[i], want.Values[i])
		}
	}
}

// TestOccupancyStreamValidation checks constructor and ordering errors.
func TestOccupancyStreamValidation(t *testing.T) {
	start := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := NewOccupancyStream(start, start, OccupancyConfig{}); err == nil {
		t.Fatal("empty span accepted")
	}
	bad := OccupancyConfig{Window: -time.Minute}
	if _, err := NewOccupancyStream(start, start.Add(time.Hour), bad); err == nil {
		t.Fatal("negative window accepted")
	}
	o, err := NewOccupancyStream(start, start.Add(time.Hour), OccupancyConfig{Window: 15 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	emit := func(int, bool) {}
	rec := func(at time.Duration) nettrace.FlowRecord {
		return nettrace.FlowRecord{Time: start.Add(at), Device: "d", BytesUp: 100_000}
	}
	// Pre-span records are ignored.
	if err := o.Observe(rec(-time.Hour), emit); err != nil {
		t.Fatal(err)
	}
	if err := o.Observe(rec(40*time.Minute), emit); err != nil {
		t.Fatal(err)
	}
	if err := o.Observe(rec(10*time.Minute), emit); err == nil {
		t.Fatal("regressing record accepted")
	}
}
