// Package zkmeter implements the cryptographic privacy-preserving smart
// meter of §III-C ([29], [30]): the meter keeps fine-grained readings local
// and publishes only Pedersen commitments; billing queries are answered with
// verifiable openings of homomorphically-combined commitments, so the
// utility can confirm the monthly bill without ever seeing the raw usage
// data that NIOM/NILM analytics would need.
//
// The construction is the classic Pedersen scheme over the quadratic-residue
// subgroup of Z_p* for a safe prime p: Commit(x, r) = g^x h^r mod p, which
// is perfectly hiding, computationally binding (under discrete log), and
// additively homomorphic: the product of interval commitments commits to the
// total energy. A Fiat-Shamir Schnorr proof lets the meter prove knowledge
// of an opening without revealing it.
package zkmeter

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"privmem/internal/meter"
)

// ErrVerify indicates a commitment or proof that failed verification.
var ErrVerify = errors.New("zkmeter: verification failed")

// ErrBadInput indicates malformed inputs.
var ErrBadInput = errors.New("zkmeter: invalid input")

// safePrimeHex is a 1024-bit safe prime p = 2q+1 (q prime), generated once
// for this artifact; TestGroupParameters re-verifies both primality claims.
// A production deployment would use a 2048-bit-or-larger group.
const safePrimeHex = "cabfde866d60351fa424ec4a1f96d4c4b65f3934a752bad4e9cb5d22578c41360d0eb499db14436f30b852b6b96cf09522341cd3803678ee6091a6064231ff1771d33bd272eff431a89844a3b6e9a1c236c0468eda33bc262a76caab56675ab6754f9ce849f645a714340de367603c2ed507d5cc7e1795bc98cc431deaee0f7f"

// Group holds the Pedersen group parameters.
type Group struct {
	// P is the safe prime modulus; Q = (P-1)/2 is the subgroup order.
	P, Q *big.Int
	// G and H generate the order-Q subgroup with unknown discrete-log
	// relation (H is derived by hashing into the group).
	G, H *big.Int
}

// NewGroup returns the standard group used by the committed meter.
func NewGroup() *Group {
	p, ok := new(big.Int).SetString(safePrimeHex, 16)
	if !ok {
		panic("zkmeter: corrupt group constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	// g = 4 = 2^2 is a quadratic residue, hence generates the order-q
	// subgroup of a safe-prime group.
	g := big.NewInt(4)
	// h: nothing-up-my-sleeve hash-to-group: square the hash to land in QR.
	seed := sha256.Sum256([]byte("privmem zkmeter generator h v1"))
	h := new(big.Int).SetBytes(seed[:])
	h.Mod(h, p)
	h.Mul(h, h)
	h.Mod(h, p)
	return &Group{P: p, Q: q, G: g, H: h}
}

// Commitment is a Pedersen commitment to one interval reading.
type Commitment struct {
	// C is g^x h^r mod p.
	C *big.Int
}

// Opening reveals a committed value and its blinding.
type Opening struct {
	// X is the committed value (watt-hours), R the blinding factor.
	X, R *big.Int
}

// Commit commits to value x (non-negative watt-hours) with fresh randomness
// from rng (pass crypto/rand.Reader in production; tests may use a
// deterministic reader).
func (g *Group) Commit(x int64, rng io.Reader) (Commitment, Opening, error) {
	if x < 0 {
		return Commitment{}, Opening{}, fmt.Errorf("%w: negative reading %d", ErrBadInput, x)
	}
	r, err := rand.Int(rng, g.Q)
	if err != nil {
		return Commitment{}, Opening{}, fmt.Errorf("zkmeter commit: %w", err)
	}
	c := g.commitRaw(big.NewInt(x), r)
	return Commitment{C: c}, Opening{X: big.NewInt(x), R: r}, nil
}

func (g *Group) commitRaw(x, r *big.Int) *big.Int {
	gx := new(big.Int).Exp(g.G, x, g.P)
	hr := new(big.Int).Exp(g.H, r, g.P)
	return gx.Mul(gx, hr).Mod(gx, g.P)
}

// Verify checks that the opening matches the commitment.
func (g *Group) Verify(c Commitment, o Opening) error {
	if c.C == nil || o.X == nil || o.R == nil {
		return fmt.Errorf("%w: nil commitment or opening", ErrBadInput)
	}
	if g.commitRaw(o.X, o.R).Cmp(c.C) != 0 {
		return fmt.Errorf("%w: opening does not match commitment", ErrVerify)
	}
	return nil
}

// Combine multiplies commitments, yielding a commitment to the sum of the
// committed values (with blinding equal to the sum of blindings mod Q).
func (g *Group) Combine(cs []Commitment) (Commitment, error) {
	if len(cs) == 0 {
		return Commitment{}, fmt.Errorf("%w: no commitments", ErrBadInput)
	}
	acc := big.NewInt(1)
	for i, c := range cs {
		if c.C == nil {
			return Commitment{}, fmt.Errorf("%w: nil commitment %d", ErrBadInput, i)
		}
		acc.Mul(acc, c.C)
		acc.Mod(acc, g.P)
	}
	return Commitment{C: acc}, nil
}

// CombineOpenings sums openings to match Combine.
func (g *Group) CombineOpenings(os []Opening) (Opening, error) {
	if len(os) == 0 {
		return Opening{}, fmt.Errorf("%w: no openings", ErrBadInput)
	}
	x := new(big.Int)
	r := new(big.Int)
	for _, o := range os {
		x.Add(x, o.X)
		r.Add(r, o.R)
	}
	r.Mod(r, g.Q)
	return Opening{X: x, R: r}, nil
}

// Proof is a Fiat-Shamir Schnorr proof of knowledge of a commitment opening.
type Proof struct {
	// A is the prover's commitment g^u h^v; Sx and Sr are the responses.
	A, Sx, Sr *big.Int
}

// Prove produces a non-interactive proof of knowledge of (x, r) for c,
// bound to the given context string.
func (g *Group) Prove(c Commitment, o Opening, context string, rng io.Reader) (Proof, error) {
	if err := g.Verify(c, o); err != nil {
		return Proof{}, fmt.Errorf("prove: %w", err)
	}
	u, err := rand.Int(rng, g.Q)
	if err != nil {
		return Proof{}, fmt.Errorf("prove: %w", err)
	}
	v, err := rand.Int(rng, g.Q)
	if err != nil {
		return Proof{}, fmt.Errorf("prove: %w", err)
	}
	a := g.commitRaw(u, v)
	e := g.challenge(c.C, a, context)
	sx := new(big.Int).Mul(e, o.X)
	sx.Add(sx, u)
	sx.Mod(sx, g.Q)
	sr := new(big.Int).Mul(e, o.R)
	sr.Add(sr, v)
	sr.Mod(sr, g.Q)
	return Proof{A: a, Sx: sx, Sr: sr}, nil
}

// VerifyProof checks a Schnorr opening proof against the commitment and
// context.
func (g *Group) VerifyProof(c Commitment, p Proof, context string) error {
	if c.C == nil || p.A == nil || p.Sx == nil || p.Sr == nil {
		return fmt.Errorf("%w: nil proof element", ErrBadInput)
	}
	e := g.challenge(c.C, p.A, context)
	lhs := g.commitRaw(p.Sx, p.Sr)
	rhs := new(big.Int).Exp(c.C, e, g.P)
	rhs.Mul(rhs, p.A)
	rhs.Mod(rhs, g.P)
	if lhs.Cmp(rhs) != 0 {
		return fmt.Errorf("%w: schnorr equation", ErrVerify)
	}
	return nil
}

// challenge derives the Fiat-Shamir challenge.
func (g *Group) challenge(c, a *big.Int, context string) *big.Int {
	h := sha256.New()
	h.Write([]byte("privmem zkmeter schnorr v1|"))
	h.Write([]byte(context))
	h.Write([]byte("|"))
	h.Write(c.Bytes())
	h.Write([]byte("|"))
	h.Write(a.Bytes())
	e := new(big.Int).SetBytes(h.Sum(nil))
	return e.Mod(e, g.Q)
}

// Meter is the privacy-preserving meter: it holds raw readings locally and
// exposes only commitments.
type Meter struct {
	group    *Group
	rng      io.Reader
	readings []meter.Reading
	openings []Opening
	// Published is the commitment stream the utility sees.
	Published []Commitment
}

// NewMeter wraps a group and randomness source.
func NewMeter(g *Group, rng io.Reader) *Meter {
	return &Meter{group: g, rng: rng}
}

// Record commits a new interval reading and appends it to the published
// stream.
func (m *Meter) Record(r meter.Reading) error {
	c, o, err := m.group.Commit(r.WattHours, m.rng)
	if err != nil {
		return fmt.Errorf("meter record: %w", err)
	}
	m.readings = append(m.readings, r)
	m.openings = append(m.openings, o)
	m.Published = append(m.Published, c)
	return nil
}

// BillingResponse answers a total-usage query over interval indexes
// [from, to): the total watt-hours, the combined opening, and a proof of
// knowledge.
type BillingResponse struct {
	// TotalWattHours is the claimed total energy.
	TotalWattHours int64
	// Opening opens the combined commitment to the total.
	Opening Opening
	// Proof is a Schnorr proof of knowledge of the opening.
	Proof Proof
}

// Bill produces the billing response for readings [from, to).
func (m *Meter) Bill(from, to int, context string) (BillingResponse, error) {
	if from < 0 || to > len(m.openings) || from >= to {
		return BillingResponse{}, fmt.Errorf("%w: bill range [%d, %d) of %d",
			ErrBadInput, from, to, len(m.openings))
	}
	combined, err := m.group.CombineOpenings(m.openings[from:to])
	if err != nil {
		return BillingResponse{}, fmt.Errorf("bill: %w", err)
	}
	cc, err := m.group.Combine(m.Published[from:to])
	if err != nil {
		return BillingResponse{}, fmt.Errorf("bill: %w", err)
	}
	proof, err := m.group.Prove(cc, combined, context, m.rng)
	if err != nil {
		return BillingResponse{}, fmt.Errorf("bill: %w", err)
	}
	return BillingResponse{
		TotalWattHours: combined.X.Int64(),
		Opening:        combined,
		Proof:          proof,
	}, nil
}

// VerifyBill is the utility side: it recombines the published commitments
// for the period and checks the claimed total, the opening, and the proof.
func VerifyBill(g *Group, published []Commitment, resp BillingResponse, context string) error {
	cc, err := g.Combine(published)
	if err != nil {
		return fmt.Errorf("verify bill: %w", err)
	}
	if resp.Opening.X == nil || resp.Opening.X.Int64() != resp.TotalWattHours {
		return fmt.Errorf("%w: claimed total does not match opening", ErrVerify)
	}
	if err := g.Verify(cc, resp.Opening); err != nil {
		return fmt.Errorf("verify bill: %w", err)
	}
	if err := g.VerifyProof(cc, resp.Proof, context); err != nil {
		return fmt.Errorf("verify bill: %w", err)
	}
	return nil
}
