package serve

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// storeExt is the suffix of every persisted entry file.
const storeExt = ".json.gz"

// entryEnvelope is the persisted (and peer-forwarded) form of an Entry:
// the canonical cache key plus both pre-rendered encodings. Text is
// base64-encoded by encoding/json's []byte rule; JSON is spliced verbatim.
type entryEnvelope struct {
	Key  string          `json:"key"`
	Text []byte          `json:"text"`
	JSON json.RawMessage `json:"json"`
}

// Store is a persistent, content-addressed report store: one gzip-compressed
// JSON envelope per entry, in a flat directory, named by the FNV-1a hash of
// the entry's cache key. Writes go through a temp file in the same
// directory and an atomic rename, so a crash mid-write leaves either the
// old entry or none — never a torn file — and a concurrent reader always
// sees a complete envelope.
//
// The store is the serving tier's L2: it survives restarts (warm start
// reloads it into the in-memory cache) and makes re-simulation unnecessary
// for any report the daemon has ever generated. Entries are immutable —
// the same key always holds byte-identical bodies, by the determinism
// contract — so there is no invalidation protocol.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) the store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: open store %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// path returns the entry file for key: content-addressed by the FNV-1a
// 64-bit hash of the cache key, so filenames never contain key characters
// (the key embeds '|' and '=') and lookups are O(1) stats.
func (st *Store) path(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key)) //lint:allow errpath hash/fnv's Write is documented to never return an error
	return filepath.Join(st.dir, fmt.Sprintf("%016x%s", h.Sum64(), storeExt))
}

// Put persists the entry atomically: gzip-compressed envelope to a temp
// file in the store directory, fsync, then rename over the final name.
func (st *Store) Put(e *Entry) error {
	env, err := json.Marshal(entryEnvelope{Key: e.Key, Text: e.Text, JSON: e.JSON})
	if err != nil {
		return fmt.Errorf("serve: store encode %s: %w", e.Key, err)
	}
	final := st.path(e.Key)
	tmp, err := os.CreateTemp(st.dir, filepath.Base(final)+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: store temp for %s: %w", e.Key, err)
	}
	defer os.Remove(tmp.Name()) //lint:allow errpath best-effort cleanup; after a successful rename the temp no longer exists
	gz := gzip.NewWriter(tmp)
	if _, err := gz.Write(env); err != nil {
		tmp.Close() //lint:allow errpath the write error is the failure being reported
		return fmt.Errorf("serve: store write %s: %w", e.Key, err)
	}
	if err := gz.Close(); err != nil {
		tmp.Close() //lint:allow errpath the gzip flush error is the failure being reported
		return fmt.Errorf("serve: store flush %s: %w", e.Key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //lint:allow errpath the sync error is the failure being reported
		return fmt.Errorf("serve: store sync %s: %w", e.Key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: store close %s: %w", e.Key, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("serve: store rename %s: %w", e.Key, err)
	}
	return nil
}

// Get returns the stored entry for key, reporting whether it was present.
// A missing entry is (nil, false, nil); a present-but-unreadable entry is
// an error so the caller can count the degradation and regenerate.
func (st *Store) Get(key string) (*Entry, bool, error) {
	e, err := readEntryFile(st.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if e.Key != key {
		// An FNV-64 filename collision between two live keys; treat the
		// slot as owned by the other key rather than serving wrong bytes.
		return nil, false, nil
	}
	return e, true, nil
}

// Load streams every readable entry in the store to fn, in unspecified
// order (warm-start consumers put each into the LRU cache, which is
// order-insensitive for correctness). Unreadable files are skipped and
// counted in the returned bad tally — a half-written temp file or a
// corrupted entry must not prevent the daemon from booting.
func (st *Store) Load(fn func(*Entry)) (loaded, bad int, err error) {
	names, err := filepath.Glob(filepath.Join(st.dir, "*"+storeExt))
	if err != nil {
		return 0, 0, fmt.Errorf("serve: store scan %s: %w", st.dir, err)
	}
	for _, name := range names {
		e, err := readEntryFile(name)
		if err != nil {
			bad++
			continue
		}
		fn(e)
		loaded++
	}
	return loaded, bad, nil
}

// Len returns the number of persisted entries (files, including any
// unreadable ones).
func (st *Store) Len() int {
	names, err := filepath.Glob(filepath.Join(st.dir, "*"+storeExt))
	if err != nil {
		return 0
	}
	return len(names)
}

// readEntryFile decodes one persisted envelope.
func readEntryFile(name string) (*Entry, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("serve: store gunzip %s: %w", name, err)
	}
	defer gz.Close()
	var env entryEnvelope
	if err := json.NewDecoder(gz).Decode(&env); err != nil {
		return nil, fmt.Errorf("serve: store decode %s: %w", name, err)
	}
	if env.Key == "" || !strings.Contains(env.Key, "|") {
		return nil, fmt.Errorf("serve: store decode %s: envelope has no cache key", name)
	}
	return &Entry{Key: env.Key, Text: env.Text, JSON: env.JSON}, nil
}
