package nilm

import (
	"fmt"
	"sort"

	"privmem/internal/hmm"
	"privmem/internal/timeseries"
)

// FHMMConfig parameterizes the factorial-HMM baseline.
type FHMMConfig struct {
	// StatesPerDevice is the number of hidden states learned per device
	// (default 2: off/on; compressors and multi-mode devices may use 3).
	StatesPerDevice int
	// ObsStdW is the assumed observation noise of the aggregate in watts,
	// absorbing meter noise and unmodeled loads (default 200 W).
	ObsStdW float64
	// ChunkSamples bounds the Viterbi lattice length decoded at once; long
	// traces are decoded in consecutive chunks (default 1440, one day of
	// minutes). Factorial decoding is O(T * K^2D), so chunking keeps memory
	// flat without affecting the decoded path except at chunk borders.
	ChunkSamples int
	// OtherStates is the number of states of the auxiliary "other loads"
	// chain trained on the unmetered remainder (aggregate minus tracked
	// devices), the standard REDD-style construction [19]. Zero disables
	// the chain (default 8 when an other-loads trace is supplied).
	OtherStates int
}

// DefaultFHMMConfig returns the baseline configuration used in the
// experiments.
func DefaultFHMMConfig() FHMMConfig {
	return FHMMConfig{StatesPerDevice: 2, ObsStdW: 200, ChunkSamples: 1440, OtherStates: 8}
}

func (c *FHMMConfig) withDefaults() FHMMConfig {
	out := *c
	d := DefaultFHMMConfig()
	if out.StatesPerDevice == 0 {
		out.StatesPerDevice = d.StatesPerDevice
	}
	if out.ObsStdW == 0 {
		out.ObsStdW = d.ObsStdW
	}
	if out.ChunkSamples == 0 {
		out.ChunkSamples = d.ChunkSamples
	}
	if out.OtherStates == 0 {
		out.OtherStates = d.OtherStates
	}
	return out
}

func (c *FHMMConfig) validate() error {
	switch {
	case c.StatesPerDevice < 1 || c.StatesPerDevice > 4:
		return fmt.Errorf("%w: states per device %d", ErrBadConfig, c.StatesPerDevice)
	case c.ObsStdW <= 0:
		return fmt.Errorf("%w: obs std %v W", ErrBadConfig, c.ObsStdW)
	case c.ChunkSamples < 16:
		return fmt.Errorf("%w: chunk samples %d", ErrBadConfig, c.ChunkSamples)
	case c.OtherStates < 0 || c.OtherStates > 8:
		return fmt.Errorf("%w: other states %d", ErrBadConfig, c.OtherStates)
	}
	return nil
}

// FHMM is a trained factorial-HMM disaggregator.
type FHMM struct {
	cfg     FHMMConfig
	names   []string
	chains  []*hmm.Model
	factory *hmm.Factorial
}

// TrainFHMM learns one HMM per device from submetered training traces
// (device name -> ground-truth power series), the training protocol the
// paper attributes to the conventional NILM approach [19]. If other is
// non-nil it must hold the unmetered remainder of the training aggregate
// (aggregate minus tracked devices); an auxiliary chain with
// cfg.OtherStates states is trained on it to absorb unmodeled loads during
// decoding, as in REDD-style FHMM implementations. The auxiliary chain is
// internal: it never appears in Devices or Disaggregate output.
func TrainFHMM(submetered map[string]*timeseries.Series, other *timeseries.Series, cfg FHMMConfig) (*FHMM, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("train fhmm: %w", err)
	}
	if len(submetered) == 0 {
		return nil, fmt.Errorf("train fhmm: %w: no training traces", ErrBadConfig)
	}
	names := make([]string, 0, len(submetered))
	for name := range submetered {
		names = append(names, name)
	}
	sort.Strings(names)

	chains := make([]*hmm.Model, 0, len(names)+1)
	for _, name := range names {
		m, err := hmm.Train(submetered[name].Values, hmm.TrainConfig{States: cfg.StatesPerDevice})
		if err != nil {
			return nil, fmt.Errorf("train fhmm: device %q: %w", name, err)
		}
		chains = append(chains, m)
	}
	if other != nil && cfg.OtherStates > 0 {
		m, err := hmm.Train(other.Values, hmm.TrainConfig{States: cfg.OtherStates})
		if err != nil {
			return nil, fmt.Errorf("train fhmm: other-loads chain: %w", err)
		}
		chains = append(chains, m)
	}
	factory, err := hmm.NewFactorial(chains, cfg.ObsStdW)
	if err != nil {
		return nil, fmt.Errorf("train fhmm: %w", err)
	}
	return &FHMM{cfg: cfg, names: names, chains: chains, factory: factory}, nil
}

// Devices returns the device names the model disaggregates, sorted.
func (f *FHMM) Devices() []string {
	out := make([]string, len(f.names))
	copy(out, f.names)
	return out
}

// Chain returns the trained per-device HMM for the named device.
func (f *FHMM) Chain(name string) (*hmm.Model, error) {
	for i, n := range f.names {
		if n == name {
			return f.chains[i], nil
		}
	}
	return nil, fmt.Errorf("fhmm: unknown device %q", name)
}

// Disaggregate decodes the aggregate trace into per-device inferred power
// series via joint (factorial) Viterbi.
func (f *FHMM) Disaggregate(aggregate *timeseries.Series) (map[string]*timeseries.Series, error) {
	out := make(map[string]*timeseries.Series, len(f.names))
	for _, name := range f.names {
		out[name] = timeseries.MustNew(aggregate.Start, aggregate.Step, aggregate.Len())
	}
	for lo := 0; lo < aggregate.Len(); lo += f.cfg.ChunkSamples {
		hi := min(lo+f.cfg.ChunkSamples, aggregate.Len())
		powers, err := f.factory.InferPower(aggregate.Values[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("fhmm disaggregate [%d:%d]: %w", lo, hi, err)
		}
		for d, name := range f.names {
			copy(out[name].Values[lo:hi], powers[d])
		}
	}
	return out, nil
}
