// Package poolescape flags sync.Pool values that leave the Get/Put window:
// a pooled object returned from the function that obtained it, stored into
// package-level state, or used again after being Put back. The pool is free
// to hand a Put value to another goroutine immediately, so every one of
// these is a latent data race — and in this repo's scratch-arena usage
// (decode beams, fleet merge buffers) the symptom is silent corruption of a
// neighboring experiment's floats rather than a crash.
//
// The analysis is intraprocedural and tracks variables bound directly to a
// `pool.Get()` result (with or without a type assertion). Escapes through
// helper calls are the certifier's territory; this analyzer catches the
// shapes that actually occur in arena code.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"privmem/internal/analysis"
)

// Analyzer is the poolescape check.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "flag sync.Pool values that escape (return, global store) or are used after Put",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkBody(pass, fd.Body)
			}
		}
	}
	return nil
}

// poolMethod reports whether call invokes the named method on a
// *sync.Pool receiver.
func poolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: variables bound to pool.Get() results, and non-deferred Put
	// positions per variable.
	pooled := map[types.Object]token.Pos{}
	putAt := map[types.Object]token.Pos{}
	putArgs := map[*ast.Ident]bool{}
	var deferRanges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.DeferStmt:
			deferRanges = append(deferRanges, [2]token.Pos{stmt.Pos(), stmt.End()})
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				if i >= len(stmt.Lhs) {
					break
				}
				expr := ast.Unparen(rhs)
				if ta, ok := expr.(*ast.TypeAssertExpr); ok {
					expr = ast.Unparen(ta.X)
				}
				call, ok := expr.(*ast.CallExpr)
				if !ok || !poolMethod(info, call, "Get") {
					continue
				}
				if id, ok := ast.Unparen(stmt.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						pooled[obj] = id.Pos()
					} else if obj := info.Uses[id]; obj != nil {
						pooled[obj] = id.Pos()
					}
				}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}
	inDefer := func(pos token.Pos) bool {
		for _, r := range deferRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !poolMethod(info, call, "Put") || len(call.Args) == 0 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = ast.Unparen(u.X)
		}
		id, ok := arg.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if _, isPooled := pooled[obj]; !isPooled {
			return true
		}
		putArgs[id] = true
		if !inDefer(call.Pos()) {
			if at, seen := putAt[obj]; !seen || call.Pos() < at {
				putAt[obj] = call.Pos()
			}
		}
		return true
	})

	// Pass 2: escapes and use-after-Put.
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ReturnStmt:
			// Only a returned pooled value itself (or its address) escapes;
			// method calls on it (b.String(), b.Len()) return derived copies.
			for _, res := range stmt.Results {
				expr := ast.Unparen(res)
				if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
					expr = ast.Unparen(u.X)
				}
				id, ok := expr.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := info.Uses[id]; obj != nil {
					if _, isPooled := pooled[obj]; isPooled {
						pass.Reportf(id.Pos(), "pooled value %s escapes via return: the pool may hand it to another goroutine after Put; copy it out or do not pool it", id.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if stmt.Tok == token.DEFINE {
				return true
			}
			for i, rhs := range stmt.Rhs {
				if i >= len(stmt.Lhs) {
					break
				}
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id]
				if _, isPooled := pooled[obj]; !isPooled {
					continue
				}
				if global, ok := globalRoot(info, stmt.Lhs[i]); ok {
					pass.Reportf(id.Pos(), "pooled value %s stored in package-level %s: it escapes the Get/Put window", id.Name, global)
				}
			}
		case *ast.Ident:
			obj := info.Uses[stmt]
			if obj == nil || putArgs[stmt] {
				return true
			}
			if put, hasPut := putAt[obj]; hasPut && stmt.Pos() > put {
				if _, isPooled := pooled[obj]; isPooled {
					pass.Reportf(stmt.Pos(), "use of pooled value %s after Put: the pool may already have handed it to another goroutine", stmt.Name)
				}
			}
		}
		return true
	})
}

// globalRoot resolves the leftmost identifier of lhs and reports its name
// when it is a package-level variable.
func globalRoot(info *types.Info, lhs ast.Expr) (string, bool) {
	e := lhs
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return "", false
			}
			return v.Name(), true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}
