package nilm

import (
	"errors"
	"math"
	"testing"
	"time"

	"privmem/internal/home"
	"privmem/internal/loads"
	"privmem/internal/meter"
	"privmem/internal/timeseries"
)

var start = time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)

// syntheticAggregate builds a clean trace with one toaster pulse and fridge
// cycles. Cycles start a few samples in: a device already on at t=0 has no
// observable rising edge.
func syntheticAggregate(t *testing.T) (*timeseries.Series, map[string]*timeseries.Series) {
	t.Helper()
	n := 6 * 60 // 6 hours of minutes
	toaster := timeseries.MustNew(start, time.Minute, n)
	for i := 30; i < 34; i++ {
		toaster.Values[i] = 900
	}
	fridge := timeseries.MustNew(start, time.Minute, n)
	for c := 0; c < 6; c++ {
		s := c*55 + 5
		for i := s; i < s+18 && i < n; i++ {
			fridge.Values[i] = 130
		}
	}
	agg := timeseries.MustNew(start, time.Minute, n)
	for i := range agg.Values {
		agg.Values[i] = toaster.Values[i] + fridge.Values[i]
	}
	return agg, map[string]*timeseries.Series{
		loads.NameToaster: toaster,
		loads.NameFridge:  fridge,
	}
}

func modelsFor(t *testing.T, names ...string) []loads.Model {
	t.Helper()
	out := make([]loads.Model, 0, len(names))
	for _, n := range names {
		m, err := loads.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func TestPowerPlayCleanTrace(t *testing.T) {
	agg, truth := syntheticAggregate(t)
	inferred, err := PowerPlay(agg, modelsFor(t, loads.NameToaster, loads.NameFridge), DefaultPowerPlayConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(truth, inferred)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ErrorFactor > 0.1 {
			t.Errorf("%s error = %.3f on a clean trace", r.Device, r.ErrorFactor)
		}
	}
}

func TestPowerPlayIgnoresUnmodeledLoads(t *testing.T) {
	agg, truth := syntheticAggregate(t)
	// Add an unmodeled 2000 W load pulse: no tracked model matches it, so
	// inferred traces must not change for tracked devices.
	noisy := agg.Clone()
	for i := 200; i < 230; i++ {
		noisy.Values[i] += 2000
	}
	inferred, err := PowerPlay(noisy, modelsFor(t, loads.NameToaster, loads.NameFridge), DefaultPowerPlayConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(truth, inferred)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ErrorFactor > 0.15 {
			t.Errorf("%s error = %.3f with unmodeled pulse", r.Device, r.ErrorFactor)
		}
	}
}

func TestPowerPlayValidation(t *testing.T) {
	agg, _ := syntheticAggregate(t)
	models := modelsFor(t, loads.NameToaster)
	tests := []struct {
		name string
		cfg  PowerPlayConfig
	}{
		{name: "tolerance too high", cfg: PowerPlayConfig{Tolerance: 1.5}},
		{name: "negative tolerance", cfg: PowerPlayConfig{Tolerance: -0.1}},
		{name: "negative min edge", cfg: PowerPlayConfig{MinEdgeW: -1}},
		{name: "negative timing", cfg: PowerPlayConfig{TimingWeight: -1}},
		{name: "negative abs tolerance", cfg: PowerPlayConfig{AbsToleranceW: -5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := PowerPlay(agg, models, tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
	if _, err := PowerPlay(agg, nil, DefaultPowerPlayConfig()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no models error = %v", err)
	}
	bad := []loads.Model{{Name: "broken"}}
	if _, err := PowerPlay(agg, bad, DefaultPowerPlayConfig()); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestFHMMCleanTrace(t *testing.T) {
	agg, truth := syntheticAggregate(t)
	f, err := TrainFHMM(truth, nil, FHMMConfig{StatesPerDevice: 2, ObsStdW: 20, ChunkSamples: 720})
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := f.Disaggregate(agg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(truth, inferred)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		// The constant 100 W base is unmodeled; clean-trace FHMM should
		// still track both devices closely.
		if r.ErrorFactor > 0.2 {
			t.Errorf("%s error = %.3f on a clean trace", r.Device, r.ErrorFactor)
		}
	}
}

func TestFHMMDevicesAndChain(t *testing.T) {
	_, truth := syntheticAggregate(t)
	f, err := TrainFHMM(truth, nil, DefaultFHMMConfig())
	if err != nil {
		t.Fatal(err)
	}
	devs := f.Devices()
	if len(devs) != 2 || devs[0] != loads.NameFridge || devs[1] != loads.NameToaster {
		t.Errorf("Devices() = %v", devs)
	}
	ch, err := f.Chain(loads.NameToaster)
	if err != nil {
		t.Fatal(err)
	}
	// The on state should be near 900 W.
	hi := ch.Means[len(ch.Means)-1]
	if math.Abs(hi-900) > 50 {
		t.Errorf("toaster on-state mean = %v", hi)
	}
	if _, err := f.Chain("nope"); err == nil {
		t.Error("unknown chain should fail")
	}
}

func TestFHMMValidation(t *testing.T) {
	_, truth := syntheticAggregate(t)
	tests := []struct {
		name string
		cfg  FHMMConfig
	}{
		{name: "zero states invalid via 5", cfg: FHMMConfig{StatesPerDevice: 5}},
		{name: "negative obs std", cfg: FHMMConfig{ObsStdW: -1}},
		{name: "tiny chunks", cfg: FHMMConfig{ChunkSamples: 4}},
		{name: "too many other states", cfg: FHMMConfig{OtherStates: 99}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := TrainFHMM(truth, nil, tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
	if _, err := TrainFHMM(nil, nil, DefaultFHMMConfig()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no traces error = %v", err)
	}
}

func TestEvaluateSkipsUnknownDevices(t *testing.T) {
	_, truth := syntheticAggregate(t)
	inferred := map[string]*timeseries.Series{
		loads.NameToaster: truth[loads.NameToaster].Clone(),
		"mystery":         truth[loads.NameToaster].Clone(),
	}
	res, err := Evaluate(truth, inferred)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Device != loads.NameToaster {
		t.Errorf("Evaluate = %+v", res)
	}
	if res[0].ErrorFactor != 0 {
		t.Errorf("perfect inference error = %v", res[0].ErrorFactor)
	}
}

// TestFigure2Shape is the integration test for the paper's Figure 2: on a
// realistic home, PowerPlay must beat the FHMM baseline for every tracked
// device, with the dryer accurately tracked by both.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := home.DefaultConfig(42)
	cfg.Days = 10
	cfg.Step = 10 * time.Second
	cfg.IncludeWaterHeater = false // the Figure 2 home heats water with gas
	tr, err := home.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc := meter.DefaultConfig(42)
	mc.Interval = 10 * time.Second
	metered, err := meter.Read(mc, tr.Aggregate)
	if err != nil {
		t.Fatal(err)
	}

	trainSamples := 3 * 24 * 360 // 3 days at 10 s
	var models []loads.Model
	truthTrain := map[string]*timeseries.Series{}
	truthTest := map[string]*timeseries.Series{}
	other := tr.Aggregate.Slice(0, trainSamples)
	for _, name := range loads.TrackedDevices() {
		m, err := loads.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
		truthTrain[name] = tr.Appliances[name].Slice(0, trainSamples)
		truthTest[name] = tr.Appliances[name].Slice(trainSamples, tr.Aggregate.Len())
		other, err = other.Sub(truthTrain[name])
		if err != nil {
			t.Fatal(err)
		}
	}

	pp, err := PowerPlay(metered.Slice(trainSamples, metered.Len()), models, DefaultPowerPlayConfig())
	if err != nil {
		t.Fatal(err)
	}
	ppErr, err := Evaluate(truthTest, pp)
	if err != nil {
		t.Fatal(err)
	}

	// FHMM consumes 1-minute data (its standard input granularity).
	coarse := func(s *timeseries.Series) *timeseries.Series {
		r, err := s.Resample(time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	train1m := map[string]*timeseries.Series{}
	test1m := map[string]*timeseries.Series{}
	for name := range truthTrain {
		train1m[name] = coarse(truthTrain[name])
		test1m[name] = coarse(truthTest[name])
	}
	f, err := TrainFHMM(train1m, coarse(other), DefaultFHMMConfig())
	if err != nil {
		t.Fatal(err)
	}
	fh, err := f.Disaggregate(coarse(metered.Slice(trainSamples, metered.Len())))
	if err != nil {
		t.Fatal(err)
	}
	fhErr, err := Evaluate(test1m, fh)
	if err != nil {
		t.Fatal(err)
	}

	fhByDev := map[string]float64{}
	for _, r := range fhErr {
		fhByDev[r.Device] = r.ErrorFactor
	}
	var ppMean, fhMean float64
	for _, r := range ppErr {
		fe := fhByDev[r.Device]
		ppMean += r.ErrorFactor / float64(len(ppErr))
		fhMean += fe / float64(len(ppErr))
		t.Logf("%-8s powerplay=%.3f fhmm=%.3f", r.Device, r.ErrorFactor, fe)
		// When both trackers are essentially perfect the ordering is noise,
		// so the strict comparison only applies once either error is
		// non-trivial.
		if (r.ErrorFactor > 0.05 || fe > 0.05) && r.ErrorFactor >= fe {
			t.Errorf("%s: PowerPlay (%.3f) should beat FHMM (%.3f)", r.Device, r.ErrorFactor, fe)
		}
	}
	if ppMean >= fhMean {
		t.Errorf("mean PowerPlay error %.3f should beat mean FHMM error %.3f", ppMean, fhMean)
	}
	for _, r := range ppErr {
		if r.Device == loads.NameDryer && r.ErrorFactor > 0.3 {
			t.Errorf("PowerPlay dryer error = %.3f, want accurate tracking", r.ErrorFactor)
		}
	}
	if fhByDev[loads.NameDryer] > 0.3 {
		t.Errorf("FHMM dryer error = %.3f, want accurate tracking", fhByDev[loads.NameDryer])
	}
}
