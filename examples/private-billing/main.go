// Private billing: the §III-C cryptographic defense end to end. A smart
// meter records a month of readings but publishes only Pedersen
// commitments; the utility receives a verifiable monthly total — and any
// attempt to tamper with the bill or the commitment stream is caught.
// For contrast, the same month is released through the §III-A differential
// privacy mechanism and the §III-D local pipeline, showing the three
// architectures' privacy/utility positions side by side.
//
//	go run ./examples/private-billing
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"privmem"
	"privmem/internal/defense/dprivacy"
	"privmem/internal/defense/localiot"
	"privmem/internal/defense/zkmeter"
	"privmem/internal/meter"
)

func main() {
	// A month of home life, metered hourly for billing.
	cfg := privmem.DefaultHomeConfig(2018)
	cfg.Days = 30
	cfg.Step = time.Minute
	world, err := privmem.NewEnergyWorldFromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hourly, err := world.Metered.Resample(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	readings := meter.BillingReadings(hourly)
	fmt.Printf("month simulated: %d hourly readings, %.1f kWh total\n\n",
		len(readings), float64(meter.TotalWattHours(readings))/1000)

	// --- The committed meter (§III-C). ---
	group := zkmeter.NewGroup()
	m := zkmeter.NewMeter(group, rand.Reader)
	t0 := time.Now()
	for _, r := range readings {
		if err := m.Record(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("meter committed every reading in %s — the utility sees only commitments\n",
		time.Since(t0).Round(time.Millisecond))

	resp, err := m.Bill(0, len(readings), "2017-06")
	if err != nil {
		log.Fatal(err)
	}
	if err := zkmeter.VerifyBill(group, m.Published, resp, "2017-06"); err != nil {
		log.Fatalf("honest bill rejected: %v", err)
	}
	fmt.Printf("utility verified the monthly bill: %d Wh (matches meter: %v)\n",
		resp.TotalWattHours, resp.TotalWattHours == meter.TotalWattHours(readings))

	// A tampering meter (or a billing-system bug) is caught immediately.
	forged := resp
	forged.TotalWattHours -= 5000 // shave 5 kWh off the bill
	if err := zkmeter.VerifyBill(group, m.Published, forged, "2017-06"); err != nil {
		fmt.Printf("forged bill rejected: %v\n\n", err)
	} else {
		log.Fatal("forged bill accepted!")
	}

	// --- Contrast: what each §III architecture exposes. ---
	ev, _, err := world.OccupancyAttack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("what the provider can learn about occupancy, by architecture:")
	fmt.Printf("  %-34s NIOM MCC %.3f\n", "raw cloud upload:", ev.MCC)

	noisy, err := dprivacy.PerturbSeries(dprivacy.DefaultMechanism(7), world.Metered)
	if err != nil {
		log.Fatal(err)
	}
	dpWorld := *world
	dpWorld.Metered = noisy
	evDP, _, err := dpWorld.OccupancyAttack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-34s NIOM MCC %.3f\n", "differentially-private release:", evDP.MCC)

	local, err := localiot.LocalPipeline(world.Trace, world.Metered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-34s NIOM MCC %.3f (uplink: %d bytes)\n",
		"local hub + committed billing:", local.CloudMCC, local.UplinkBytes)
	fmt.Println("\nthe committed meter keeps billing exact while revealing nothing else")
}
