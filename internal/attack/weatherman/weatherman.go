// Package weatherman implements the Weatherman localization attack [5]:
// correlating a solar site's generation anomalies with publicly available
// per-station weather histories. Weather is locally unique — cloud cover at
// two points decorrelates with distance — so the station whose cloud-cover
// history best explains the site's generation dips pins the site's location,
// even from coarse 1-hour data where SunSpot's timing signal is weak.
package weatherman

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"privmem/internal/stats"
	"privmem/internal/timeseries"
	"privmem/internal/weather"
)

// ErrBadInput indicates unusable inputs.
var ErrBadInput = errors.New("weatherman: invalid input")

// Config parameterizes the attack.
type Config struct {
	// MinEnvelopeFrac restricts correlation to hours whose clear-sky
	// envelope exceeds this fraction of the site's overall peak, i.e.
	// daylight hours with meaningful signal (default 0.25).
	MinEnvelopeFrac float64
	// TopK is the number of best-correlated stations blended into the final
	// estimate (default 3).
	TopK int
	// MinSamples is the minimum number of usable hours (default 100).
	MinSamples int
}

// DefaultConfig returns the attack configuration used in the experiments.
func DefaultConfig() Config {
	return Config{MinEnvelopeFrac: 0.25, TopK: 3, MinSamples: 100}
}

func (c *Config) withDefaults() Config {
	out := *c
	d := DefaultConfig()
	if out.MinEnvelopeFrac == 0 {
		out.MinEnvelopeFrac = d.MinEnvelopeFrac
	}
	if out.TopK == 0 {
		out.TopK = d.TopK
	}
	if out.MinSamples == 0 {
		out.MinSamples = d.MinSamples
	}
	return out
}

func (c *Config) validate() error {
	switch {
	case c.MinEnvelopeFrac <= 0 || c.MinEnvelopeFrac >= 1:
		return fmt.Errorf("%w: envelope fraction %v", ErrBadInput, c.MinEnvelopeFrac)
	case c.TopK < 1:
		return fmt.Errorf("%w: top-k %d", ErrBadInput, c.TopK)
	case c.MinSamples < 10:
		return fmt.Errorf("%w: min samples %d", ErrBadInput, c.MinSamples)
	}
	return nil
}

// Estimate is a recovered location with its supporting evidence.
type Estimate struct {
	// Lat and Lon are the inferred coordinates in degrees.
	Lat, Lon float64
	// BestStation is the highest-correlated station name.
	BestStation string
	// BestCorrelation is that station's Pearson correlation with the site's
	// generation anomaly.
	BestCorrelation float64
	// SamplesUsed counts correlated hours.
	SamplesUsed int
}

// Localize runs Weatherman on an hourly generation trace against a public
// station set.
func Localize(gen *timeseries.Series, stations []weather.Station, cfg Config) (Estimate, error) {
	cfg = cfg.withDefaults()
	var est Estimate
	if err := cfg.validate(); err != nil {
		return est, err
	}
	if len(stations) == 0 {
		return est, fmt.Errorf("%w: no stations", ErrBadInput)
	}
	if gen.Step != time.Hour {
		resampled, err := gen.Resample(time.Hour)
		if err != nil {
			return est, fmt.Errorf("weatherman: %w", err)
		}
		gen = resampled
	}

	anomaly, indices, err := anomalySeries(gen, cfg)
	if err != nil {
		return est, err
	}

	type scored struct {
		station weather.Station
		r       float64
	}
	scores := make([]scored, 0, len(stations))
	for _, st := range stations {
		cloud := make([]float64, len(indices))
		for j, i := range indices {
			cloud[j] = st.Cloud.At(gen.TimeAt(i))
		}
		r, err := stats.Pearson(anomaly, cloud)
		if err != nil {
			continue
		}
		scores = append(scores, scored{station: st, r: r})
	}
	if len(scores) == 0 {
		return est, fmt.Errorf("%w: no correlatable stations", ErrBadInput)
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].r > scores[b].r })

	k := min(cfg.TopK, len(scores))
	base := 0.0
	if k < len(scores) {
		base = math.Max(0, scores[k].r)
	}
	var wSum, latSum, lonSum float64
	for _, s := range scores[:k] {
		w := s.r - base
		if w <= 0 {
			w = 1e-6
		}
		wSum += w
		latSum += w * s.station.Lat
		lonSum += w * s.station.Lon
	}
	est.Lat = latSum / wSum
	est.Lon = lonSum / wSum
	est.BestStation = scores[0].station.Name
	est.BestCorrelation = scores[0].r
	est.SamplesUsed = len(anomaly)
	return est, nil
}

// anomalySeries converts generation to a cloudiness proxy: one minus the
// generation's fraction of its hour-of-day clear-sky envelope, evaluated at
// strong-daylight hours.
func anomalySeries(gen *timeseries.Series, cfg Config) (anomaly []float64, indices []int, err error) {
	const hoursPerDay = 24
	if gen.Len() < 2*hoursPerDay {
		return nil, nil, fmt.Errorf("%w: trace too short (%d h)", ErrBadInput, gen.Len())
	}
	// Hour-of-day envelope: the maximum observed generation at each UTC
	// hour approximates the clear-sky output for that hour.
	envelope := make([]float64, hoursPerDay)
	for i, v := range gen.Values {
		h := i % hoursPerDay
		envelope[h] = math.Max(envelope[h], v)
	}
	peak := 0.0
	for _, v := range envelope {
		peak = math.Max(peak, v)
	}
	if peak <= 0 {
		return nil, nil, fmt.Errorf("%w: no generation at all", ErrBadInput)
	}
	for i, v := range gen.Values {
		env := envelope[i%hoursPerDay]
		if env < cfg.MinEnvelopeFrac*peak {
			continue
		}
		a := 1 - v/env
		anomaly = append(anomaly, math.Max(0, math.Min(1, a)))
		indices = append(indices, i)
	}
	if len(anomaly) < cfg.MinSamples {
		return nil, nil, fmt.Errorf("%w: only %d usable hours (need %d)",
			ErrBadInput, len(anomaly), cfg.MinSamples)
	}
	return anomaly, indices, nil
}
