package fleet

import (
	"strings"
	"testing"
)

// FuzzFleetConfig feeds arbitrary strings to the fleet spec parser. The
// parser must never panic and never allocate proportionally to hostile field
// values (a claimed million-part mix or a 50-million-home population must be
// rejected by bounds checks, not materialized). Accepted specs must be
// valid, within every documented bound, and re-parse to the same spec.
func FuzzFleetConfig(f *testing.F) {
	f.Add("")
	f.Add("homes=1000 workers=4 days=2 seed=7")
	f.Add("homes=1000000 workers=8 step=15m window=1h history=8 variants=4 buffer=2")
	f.Add("mix=family:0.6,retired:0.4")
	f.Add("mix=family:NaN")
	f.Add("mix=family:-1")
	f.Add("mix=family:Inf,apartment:1")
	f.Add("homes=0")
	f.Add("homes=-5 workers=-1")
	f.Add("homes=99999999999999999999")
	f.Add("step=0s window=0s")
	f.Add("step=7m window=13m")
	f.Add("window=25h")
	f.Add("seed=x homes")
	f.Add("mix=" + strings.Repeat("family:1,", 200))
	f.Add("homes=1\x00workers=1")

	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return // rejected input: any error is fine, panics are not
		}
		// Accepted spec: must validate and sit inside every bound.
		if err := spec.Validate(); err != nil {
			t.Fatalf("parsed spec fails validation: %v (input %q)", err, s)
		}
		if spec.Homes < 1 || spec.Homes > MaxHomes ||
			spec.Workers < 1 || spec.Workers > MaxWorkers ||
			spec.Days < 1 || spec.Days > MaxDays ||
			spec.History < 1 || spec.History > MaxHistory ||
			spec.Variants < 1 || spec.Variants > MaxVariants ||
			spec.Buffer < 1 || spec.Buffer > MaxBuffer ||
			len(spec.Mix) > MaxMixParts {
			t.Fatalf("accepted spec out of bounds: %+v (input %q)", spec, s)
		}
		for _, m := range spec.Mix {
			if m.Weight <= 0 || m.Weight != m.Weight {
				t.Fatalf("accepted non-positive mix weight %v (input %q)", m.Weight, s)
			}
		}
		// Apportionment over the accepted mix must conserve homes.
		counts := assignCounts(spec.Homes, spec.effectiveMix())
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != spec.Homes {
			t.Fatalf("assignCounts lost homes: %d of %d (input %q)", total, spec.Homes, s)
		}
	})
}
