package experiments

import (
	"fmt"
	"time"

	"privmem/internal/attack/niom"
	"privmem/internal/defense/chpr"
	"privmem/internal/home"
	"privmem/internal/meter"
	"privmem/internal/stats"
	"privmem/internal/timeseries"
)

// Figure1HomeTraces reproduces Figure 1: one day (8am-11pm) of 1-minute
// power overlaid with binary occupancy for two homes — a calmer Home-A and
// a peakier Home-B. The report rows are hourly summaries; the full
// 1-minute series is exported by cmd/figures -csv.
func Figure1HomeTraces(opts Options) (*Report, error) {
	homes, _, err := figure1Series(opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "f1",
		Title:   "power vs. occupancy overlay, Home-A and Home-B (8am-11pm)",
		Headers: []string{"hour", "A power (kW)", "A occ", "B power (kW)", "B occ"},
		Metrics: map[string]float64{},
		Notes: []string{
			"expect occupied hours to be higher-mean and burstier; Home-B peakier than Home-A",
		},
	}
	for h := 8; h < 23; h++ {
		row := []string{fmt.Sprintf("%02d:00", h)}
		for _, hd := range homes {
			from := hd.power.Start.Add(time.Duration(h) * time.Hour)
			w := hd.power.Window(from, from.Add(time.Hour))
			o := hd.occ.Window(from, from.Add(time.Hour))
			row = append(row, f(w.Mean()/1000), f1dp(o.Mean()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	for i, hd := range homes {
		name := string(rune('A' + i))
		var occVals, powVals []float64
		for j := range hd.power.Values {
			occVals = append(occVals, hd.occ.Values[j])
			powVals = append(powVals, hd.power.Values[j])
		}
		if r, err := stats.Pearson(occVals, powVals); err == nil {
			rep.Metrics["corr_power_occupancy_"+name] = r
		}
		rep.Metrics["peak_kw_"+name] = hd.power.Max() / 1000
	}
	return rep, nil
}

// figure1Home bundles one home's day of data.
type figure1Home struct {
	power, occ *timeseries.Series
}

// figure1Series builds the two homes' day-long series (also used by the
// CSV export). Like the paper's figure, the day must actually show the
// phenomenon — occupied and unoccupied periods both present — so each home
// deterministically scans forward from its base seed until it draws such a
// day. The seed scan (up to 25 simulations per home) makes this one of the
// costlier worlds, so it is memoized.
func figure1Series(opts Options) ([]figure1Home, []string, error) {
	homes, err := memoWorld(memoKey("figure1", opts), func() ([]figure1Home, error) {
		h, _, err := figure1SeriesUncached(opts)
		return h, err
	})
	if err != nil {
		return nil, nil, err
	}
	return homes, []string{"Home-A", "Home-B"}, nil
}

func figure1SeriesUncached(opts Options) ([]figure1Home, []string, error) {
	seed := opts.seed()
	cfgA := home.DefaultConfig(seed)
	cfgA.Days = 1
	cfgA.Occupants = 1
	cfgA.ActivityRatePerHour = 1.0
	cfgA.IncludeWaterHeater = false // Home-A peaks ~3 kW as in the paper
	cfgA.LaundryDays = nil

	cfgB := home.DefaultConfig(seed + 1)
	cfgB.Days = 1
	cfgB.Occupants = 3
	cfgB.ActivityRatePerHour = 2.2
	cfgB.LaundryDays = []time.Weekday{cfgB.Start.Weekday()}

	var homes []figure1Home
	for _, cfg := range []home.Config{cfgA, cfgB} {
		var chosen figure1Home
		found := false
		for attempt := int64(0); attempt < 25 && !found; attempt++ {
			cfg.Seed += attempt
			tr, err := home.Simulate(cfg)
			if err != nil {
				return nil, nil, fmt.Errorf("figure 1: %w", err)
			}
			m, err := meter.Read(meter.DefaultConfig(cfg.Seed), tr.Aggregate)
			if err != nil {
				return nil, nil, fmt.Errorf("figure 1: %w", err)
			}
			occ := tr.Occupancy.Mean()
			if occ > 0.3 && occ < 0.95 {
				chosen = figure1Home{power: m, occ: tr.Occupancy}
				found = true
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("figure 1: no representative day within 25 seeds of %d", cfg.Seed)
		}
		homes = append(homes, chosen)
	}
	return homes, []string{"Home-A", "Home-B"}, nil
}

// Figure1CSV renders the full 1-minute series of Figure 1 as CSV rows
// (minute, powerA, occA, powerB, occB).
func Figure1CSV(opts Options) ([]string, error) {
	homes, _, err := figure1Series(opts)
	if err != nil {
		return nil, err
	}
	out := []string{"minute,power_a_w,occ_a,power_b_w,occ_b"}
	a, b := homes[0], homes[1]
	for i := 0; i < a.power.Len(); i++ {
		out = append(out, fmt.Sprintf("%d,%.1f,%.0f,%.1f,%.0f",
			i, a.power.Values[i], a.occ.Values[i], b.power.Values[i], b.occ.Values[i]))
	}
	return out, nil
}

// Figure6CHPr reproduces Figure 6: a week-long home trace before and after
// the CHPr water-heater mask, scored by the NIOM attacker's MCC. The paper
// reports 0.44 -> 0.045 (a factor of ~10, near random prediction).
func Figure6CHPr(opts Options) (*Report, error) {
	seed := opts.seed()
	w, err := chprWorld(opts)
	if err != nil {
		return nil, fmt.Errorf("figure 6: %w", err)
	}
	tr, base, masked := w.tr, w.base, w.masked
	orig, defended := w.orig, w.defended

	score := func(trace *timeseries.Series, mseed int64) (niom.Evaluation, error) {
		m, err := meter.Read(meter.DefaultConfig(mseed), trace)
		if err != nil {
			return niom.Evaluation{}, err
		}
		pred, err := niom.DetectThreshold(m, niom.DefaultConfig())
		if err != nil {
			return niom.Evaluation{}, err
		}
		return niom.Evaluate(tr.Occupancy, pred)
	}
	evO, err := score(orig, seed+1)
	if err != nil {
		return nil, fmt.Errorf("figure 6: %w", err)
	}
	evD, err := score(defended, seed+2)
	if err != nil {
		return nil, fmt.Errorf("figure 6: %w", err)
	}

	rep := &Report{
		ID:      "f6",
		Title:   "CHPr water-heater masking vs. NIOM occupancy detection",
		Headers: []string{"trace", "NIOM MCC", "accuracy", "heater kWh", "comfort violations"},
		Rows: [][]string{
			{"original (thermostat heater)", f(evO.MCC), f(evO.Accuracy),
				f1dp(base.EnergyWh / 1000), fmt.Sprint(base.ComfortViolations)},
			{"CHPr-masked", f(evD.MCC), f(evD.Accuracy),
				f1dp(masked.EnergyWh / 1000), fmt.Sprint(masked.ComfortViolations)},
		},
		Metrics: map[string]float64{
			"mcc_original": evO.MCC,
			"mcc_chpr":     evD.MCC,
			"energy_overhead_frac": (masked.EnergyWh - base.EnergyWh) /
				base.EnergyWh,
		},
		Notes: []string{
			"paper: MCC 0.44 -> 0.045 (~10x, near random prediction)",
			"hot water service preserved: comfort violations must be 0",
		},
	}
	if evD.MCC != 0 {
		rep.Metrics["mcc_reduction_factor"] = evO.MCC / evD.MCC
	}
	return rep, nil
}

// chprWorkload is the memoized Figure 6 world: the gas-heated home plus
// the deterministic thermostat-baseline and CHPr-masked heater traces and
// the two combined aggregates the attacker scores. Shared read-only.
type chprWorkload struct {
	tr             *home.Trace
	base, masked   *chpr.Result
	orig, defended *timeseries.Series
}

// chprWorld builds (or returns the memoized) CHPr evaluation world.
func chprWorld(opts Options) (*chprWorkload, error) {
	return memoWorld(memoKey("chpr", opts), func() (*chprWorkload, error) {
		seed := opts.seed()
		cfg := home.DefaultConfig(seed + 101)
		cfg.Days = 7
		if opts.Quick {
			cfg.Days = 4
		}
		cfg.IncludeWaterHeater = false // the heater is simulated below
		tr, err := home.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		tank := chpr.DefaultTank()
		base, err := chpr.Baseline(tank, tr.WaterDraws, tr.Aggregate)
		if err != nil {
			return nil, err
		}
		masked, err := chpr.Mask(tank, chpr.DefaultConfig(seed), tr.Aggregate, tr.WaterDraws)
		if err != nil {
			return nil, err
		}
		orig, err := tr.Aggregate.Add(base.HeaterPower)
		if err != nil {
			return nil, err
		}
		defended, err := tr.Aggregate.Add(masked.HeaterPower)
		if err != nil {
			return nil, err
		}
		return &chprWorkload{tr: tr, base: base, masked: masked, orig: orig, defended: defended}, nil
	})
}

// TableNIOMAccuracy reproduces the in-text claim that NIOM reaches 70-90%
// occupancy-detection accuracy across a range of homes [1], [14], using
// both detectors on a diverse simulated population. Accuracy is evaluated
// over waking hours (8am-11pm, the span of the paper's Figure 1):
// power-only detectors cannot observe sleeping occupants.
func TableNIOMAccuracy(opts Options) (*Report, error) {
	nHomes, days := 12, 7
	if opts.Quick {
		nHomes, days = 4, 4
	}
	rep := &Report{
		ID:    "t1",
		Title: "NIOM occupancy-detection accuracy across homes (waking hours)",
		Headers: []string{"home", "occupants", "threshold acc", "threshold MCC",
			"hmm acc", "hmm MCC"},
		Metrics: map[string]float64{},
		Notes:   []string{"paper: accuracies of 70-90% across homes"},
	}
	pop, err := niomPopulation(opts, nHomes, days)
	if err != nil {
		return nil, fmt.Errorf("table niom: %w", err)
	}
	var accs []float64
	for i := 0; i < nHomes; i++ {
		h := pop[i]
		m := h.metered
		predT, err := niom.DetectThreshold(m, niom.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("table niom: %w", err)
		}
		evT, err := niom.EvaluateDaytime(h.occupancy, predT, 8, 23)
		if err != nil {
			return nil, fmt.Errorf("table niom: %w", err)
		}
		predH, err := niom.DetectHMM(m, niom.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("table niom: %w", err)
		}
		evH, err := niom.EvaluateDaytime(h.occupancy, predH, 8, 23)
		if err != nil {
			return nil, fmt.Errorf("table niom: %w", err)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("home-%02d", i+1), fmt.Sprint(h.occupants),
			f(evT.Accuracy), f(evT.MCC), f(evH.Accuracy), f(evH.MCC),
		})
		accs = append(accs, evT.Accuracy)
	}
	rep.Metrics["threshold_acc_mean"] = stats.Mean(accs)
	rep.Metrics["threshold_acc_min"] = stats.Quantile(accs, 0)
	rep.Metrics["threshold_acc_max"] = stats.Quantile(accs, 1)
	return rep, nil
}

// niomHome is one memoized t1 population member. Shared read-only.
type niomHome struct {
	occupants int
	metered   *timeseries.Series
	occupancy *timeseries.Series
}

// niomPopulation builds (or returns the memoized) t1 home population: the
// diverse simulated homes and their metered streams. Detection runs live.
func niomPopulation(opts Options, nHomes, days int) ([]niomHome, error) {
	return memoWorld(memoKey("niompop", opts), func() ([]niomHome, error) {
		seed := opts.seed()
		pop := make([]niomHome, 0, nHomes)
		for i := 0; i < nHomes; i++ {
			cfg := home.RandomConfig(seed, i)
			cfg.Days = days
			tr, err := home.Simulate(cfg)
			if err != nil {
				return nil, err
			}
			m, err := meter.Read(meter.DefaultConfig(seed+int64(i)), tr.Aggregate)
			if err != nil {
				return nil, err
			}
			pop = append(pop, niomHome{occupants: cfg.Occupants, metered: m, occupancy: tr.Occupancy})
		}
		return pop, nil
	})
}
