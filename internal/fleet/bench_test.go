package fleet

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkFleetStreaming measures the fleet pipeline end to end at a small
// population and reports the headline columns the BENCH_fleet.json snapshot
// tracks: ingest throughput in homes/sec, live bytes/home, and the median
// per-home NIOM accuracy as the leakage signal's sanity anchor. Timing uses
// b.Elapsed, never wall-clock reads inside the library (the library result
// must stay a pure function of the spec).
func BenchmarkFleetStreaming(b *testing.B) {
	spec := Spec{
		Homes:    2000,
		Workers:  4,
		Days:     2,
		Seed:     42,
		Step:     15 * time.Minute,
		Window:   time.Hour,
		History:  8,
		Variants: 4,
		Buffer:   2,
	}
	b.ReportAllocs()
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var res *Result
	for i := 0; i < b.N; i++ {
		r, err := Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	secPerRun := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(spec.Homes)/secPerRun, "homes/sec")
	live := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if live < 0 {
		live = 0
	}
	b.ReportMetric(float64(live)/float64(spec.Homes), "bytes/home")
	b.ReportMetric(res.NIOMAccuracy.P50, "niom_acc_p50")
	// Leakage latency: how much simulated time passes before the attack has
	// a per-home verdict — one analysis window.
	b.ReportMetric(spec.Window.Seconds(), "leak_latency_sec")
}
