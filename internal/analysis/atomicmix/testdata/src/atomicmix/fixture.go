// Fixture for the atomicmix analyzer: a field touched by both
// sync/atomic functions and plain loads/stores is flagged at the plain
// access; all-atomic fields, typed atomics, and composite-literal
// initialization are clean.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	typed  atomic.Int64
}

var global int64

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

func (c *counters) flaggedPlainRead() int64 {
	return c.hits // want `hits is accessed atomically elsewhere`
}

func (c *counters) flaggedPlainWrite() {
	c.misses = 0 // want `misses is accessed atomically elsewhere`
}

func (c *counters) cleanAtomicRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) cleanTyped() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

func flaggedGlobal() int64 {
	atomic.AddInt64(&global, 1)
	return global // want `global is accessed atomically elsewhere`
}

func cleanInit() *counters {
	return &counters{hits: 0, misses: 0}
}
