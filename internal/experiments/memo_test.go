package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
)

// memoTestIDs are world-backed experiments whose quick-scale runs are cheap
// enough to race repeatedly. Their memo keys cover four distinct builders
// (f2 and t2 share the nilm builder but derive different RunAll seeds, so
// they still produce two keys).
var memoTestIDs = []string{"f2", "t2", "t4", "t10"}

// memoKeyForID maps a suite id to the world-memo key its generator uses
// under RunAll's derived options.
func memoKeyForID(id string, opts Options) string {
	builder := map[string]string{
		"f2": "nilm", "t2": "nilm", "t4": "battery", "t10": "localiot",
	}[id]
	return memoKey(builder, opts.ForExperiment(id))
}

// TestWorldMemoBuildsOnceUnderConcurrentRunAll races several RunAll
// invocations at mixed worker counts and checks each (seed, quick) world
// was built exactly once — the singleflight guarantee — and that every
// suite produced identical reports.
func TestWorldMemoBuildsOnceUnderConcurrentRunAll(t *testing.T) {
	SetWorldMemo(true) // flush any worlds cached by earlier tests
	resetWorldMemoCounters()
	defer SetWorldMemo(true)

	opts := Options{Quick: true, Seed: 42}
	workerCounts := []int{1, 2, runtime.NumCPU() + 1}
	rendered := make([][]string, len(workerCounts))
	var wg sync.WaitGroup
	for wi, workers := range workerCounts {
		wg.Add(1)
		go func(wi, workers int) {
			defer wg.Done()
			reports, err := RunAll(context.Background(), memoTestIDs, opts,
				RunAllOptions{Workers: workers})
			if err != nil {
				t.Errorf("workers=%d: %v", workers, err)
				return
			}
			for _, rep := range reports {
				rendered[wi] = append(rendered[wi], rep.Render())
			}
		}(wi, workers)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for wi := 1; wi < len(rendered); wi++ {
		for i := range rendered[0] {
			if rendered[wi][i] != rendered[0][i] {
				t.Errorf("report %s differs between concurrent suite runs", memoTestIDs[i])
			}
		}
	}
	for _, id := range memoTestIDs {
		key := memoKeyForID(id, opts)
		if got := worldBuildCount(key); got != 1 {
			t.Errorf("world %s built %d times across %d concurrent suites, want exactly 1",
				key, got, len(workerCounts))
		}
	}
}

// TestWorldMemoSingleflightSharesOneWorld checks concurrent callers of one
// builder share a single build and receive the same world.
func TestWorldMemoSingleflightSharesOneWorld(t *testing.T) {
	SetWorldMemo(true)
	resetWorldMemoCounters()
	defer SetWorldMemo(true)

	opts := Options{Quick: true, Seed: 1234, SeedSet: true}
	const callers = 8
	worlds := make([]*batteryWorkload, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := batteryWorld(opts)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			worlds[i] = w
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < callers; i++ {
		if worlds[i] != worlds[0] {
			t.Fatalf("caller %d got a different world instance", i)
		}
	}
	if got := worldBuildCount(memoKey("battery", opts)); got != 1 {
		t.Fatalf("built %d times, want 1", got)
	}
}

// TestWorldMemoErrorNotCached forces a build failure and checks (a) every
// concurrent caller observes the error, and (b) the failure is not cached:
// the next call rebuilds and succeeds.
func TestWorldMemoErrorNotCached(t *testing.T) {
	SetWorldMemo(true)
	resetWorldMemoCounters()
	defer func() {
		worldBuildErrHook = nil
		SetWorldMemo(true)
	}()

	opts := Options{Quick: true, Seed: 99, SeedSet: true}
	key := memoKey("battery", opts)
	boom := errors.New("forced world-build failure")
	worldBuildErrHook = func(k string) error {
		if k == key {
			return boom
		}
		return nil
	}

	const callers = 4
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = batteryWorld(opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: err = %v, want the forced failure", i, err)
		}
	}

	worldBuildErrHook = nil
	w, err := batteryWorld(opts)
	if err != nil {
		t.Fatalf("retry after failure: %v (failure was cached)", err)
	}
	if w == nil || w.load == nil {
		t.Fatal("retry returned an empty world")
	}
	if got := worldBuildCount(key); got < 2 {
		t.Fatalf("build count %d, want >= 2 (failed build + successful retry)", got)
	}
}

// TestWorldMemoDisabledRebuilds checks SetWorldMemo(false) really disables
// caching: two calls build twice (and still agree).
func TestWorldMemoDisabledRebuilds(t *testing.T) {
	SetWorldMemo(false)
	resetWorldMemoCounters()
	defer SetWorldMemo(true)

	opts := Options{Quick: true, Seed: 7, SeedSet: true}
	w1, err := batteryWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := batteryWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	if w1 == w2 {
		t.Fatal("memo disabled but calls shared one world instance")
	}
	if got := worldBuildCount(memoKey("battery", opts)); got != 2 {
		t.Fatalf("build count %d, want 2 with memo disabled", got)
	}
}
