// Package fingerprint implements the traffic-analysis attack of §IV: a
// passive observer on (or upstream of) a home LAN — a compromised device in
// promiscuous mode, or an ISP-side eavesdropper — identifies which kinds of
// IoT devices a home owns and profiles occupant behaviour, using only
// encrypted-flow metadata (timing, volume, endpoints).
//
// Two inferences are implemented:
//
//   - Device identification: a nearest-centroid classifier over per-window
//     traffic features, trained on lab captures of known devices.
//   - Occupancy inference: activity-linked devices (cameras, TVs, speakers,
//     locks) emit event traffic when occupants are active, so windows with
//     event-scale flows reveal occupancy — the network-side analogue of the
//     NIOM attack on energy data.
package fingerprint

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"privmem/internal/nettrace"
	"privmem/internal/timeseries"
)

// ErrBadInput indicates unusable inputs.
var ErrBadInput = errors.New("fingerprint: invalid input")

// Classifier identifies device classes from traffic features.
type Classifier struct {
	// window is the feature window the classifier was trained at.
	window time.Duration
	// classes lists the known classes in training order.
	classes []nettrace.Class
	// centroids holds one z-scored centroid per class.
	centroids [][]float64
	// mean and std are the z-scoring parameters.
	mean, std []float64
}

// Train fits a nearest-centroid classifier from a labeled lab capture: the
// attacker records each device type in isolation (as IoT fingerprinting
// papers do) and builds per-class centroids of the feature distribution.
func Train(lab *nettrace.Capture, window time.Duration) (*Classifier, error) {
	feats, err := nettrace.ExtractFeatures(lab, window)
	if err != nil {
		return nil, fmt.Errorf("fingerprint train: %w", err)
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("fingerprint train: %w: empty capture", ErrBadInput)
	}

	// Devices are visited in sorted order here and in the centroid
	// accumulation below: float accumulation is order-sensitive at the ULP
	// level, and a map-order walk would make mean/std — and with them every
	// centroid — differ bit-wise from run to run.
	devices := make([]string, 0, len(feats))
	nWin := 0
	for name, fs := range feats {
		devices = append(devices, name)
		nWin += len(fs)
	}
	sort.Strings(devices)
	// One flat slab holds every window's vector (row i at i*FeatureDim) —
	// the walk order and per-dimension accumulation order match the old
	// slice-of-vectors layout exactly.
	flat := make([]float64, 0, nWin*nettrace.FeatureDim)
	for _, name := range devices {
		for _, f := range feats[name] {
			flat = f.AppendVector(flat)
		}
	}
	mean := make([]float64, nettrace.FeatureDim)
	std := make([]float64, nettrace.FeatureDim)
	for d := 0; d < nettrace.FeatureDim; d++ {
		var s float64
		for i := 0; i < nWin; i++ {
			s += flat[i*nettrace.FeatureDim+d]
		}
		mean[d] = s / float64(nWin)
		var ss float64
		for i := 0; i < nWin; i++ {
			diff := flat[i*nettrace.FeatureDim+d] - mean[d]
			ss += diff * diff
		}
		std[d] = math.Sqrt(ss / float64(nWin))
		if std[d] == 0 {
			std[d] = 1
		}
	}

	sums := map[nettrace.Class][]float64{}
	counts := map[nettrace.Class]int{}
	row := 0
	for _, dev := range devices {
		fs := feats[dev]
		class, err := lab.DeviceClass(dev)
		if err != nil {
			return nil, fmt.Errorf("fingerprint train: %w", err)
		}
		acc, ok := sums[class]
		if !ok {
			acc = make([]float64, nettrace.FeatureDim)
			sums[class] = acc
		}
		for range fs {
			v := flat[row*nettrace.FeatureDim : (row+1)*nettrace.FeatureDim]
			row++
			for d := range acc {
				acc[d] += (v[d] - mean[d]) / std[d]
			}
			counts[class]++
		}
	}

	c := &Classifier{window: window, mean: mean, std: std}
	for _, class := range nettrace.Classes() {
		if counts[class] == 0 {
			continue
		}
		centroid := make([]float64, nettrace.FeatureDim)
		for d := range centroid {
			centroid[d] = sums[class][d] / float64(counts[class])
		}
		c.classes = append(c.classes, class)
		c.centroids = append(c.centroids, centroid)
	}
	if len(c.classes) == 0 {
		return nil, fmt.Errorf("fingerprint train: %w: no labeled classes", ErrBadInput)
	}
	return c, nil
}

// Window returns the feature window the classifier was trained at.
func (c *Classifier) Window() time.Duration { return c.window }

// ScoreVector returns the nearest-centroid class for one raw feature vector
// (as produced by Features.Vector) together with the squared z-space distance
// to the winning centroid. The distance is the classifier's confidence
// signal: the streaming identifier tracks it per window as a live z-score of
// how sharply a device's traffic matches its inferred class.
func (c *Classifier) ScoreVector(v []float64) (nettrace.Class, float64) {
	best, bestD := 0, math.Inf(1)
	for i, centroid := range c.centroids {
		var d float64
		for k := range centroid {
			z := (v[k]-c.mean[k])/c.std[k] - centroid[k]
			d += z * z
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return c.classes[best], bestD
}

// classifyVector returns the best class for one z-scored feature vector.
func (c *Classifier) classifyVector(v []float64) nettrace.Class {
	class, _ := c.ScoreVector(v)
	return class
}

// ClassifyDevice labels a device by majority vote over its windows.
func (c *Classifier) ClassifyDevice(feats []nettrace.Features) (nettrace.Class, error) {
	if len(feats) == 0 {
		return 0, fmt.Errorf("classify: %w: no windows", ErrBadInput)
	}
	votes := map[nettrace.Class]int{}
	vbuf := make([]float64, 0, nettrace.FeatureDim)
	for _, f := range feats {
		vbuf = f.AppendVector(vbuf[:0])
		votes[c.classifyVector(vbuf)]++
	}
	var best nettrace.Class
	bestN := -1
	for _, class := range nettrace.Classes() {
		if votes[class] > bestN {
			best, bestN = class, votes[class]
		}
	}
	return best, nil
}

// Identification is the result of classifying every device in a capture.
type Identification struct {
	// Predicted maps device name to inferred class. Devices of dropped
	// classes are still predicted (the attacker's view) but excluded from
	// Accuracy.
	Predicted map[string]nettrace.Class
	// Accuracy is the fraction of scorable devices classified correctly.
	Accuracy float64
	// PerClass maps each true class to its recall.
	PerClass map[nettrace.Class]float64
	// DroppedClasses lists classes the classifier saw in the lab but could
	// not fit (too few training windows), in nettrace.Classes order. Victim
	// devices of these classes are structurally unclassifiable — scoring
	// them as plain misclassifications would blame the attacker for a
	// training-data gap — so they are flagged here and excluded from
	// Accuracy and PerClass.
	DroppedClasses []nettrace.Class
	// DroppedDevices counts victim devices excluded from accuracy because
	// their true class was dropped at training.
	DroppedDevices int
}

// identifyFeatures scores one per-device classify function over
// pre-extracted victim features. dropped lists classes the classifier could
// not learn: their devices are predicted but flagged and excluded from the
// accuracy accounting.
func identifyFeatures(victim *nettrace.Capture, feats map[string][]nettrace.Features,
	classify func([]nettrace.Features) (nettrace.Class, error), dropped []nettrace.Class, label string) (*Identification, error) {
	return scoreDevices(victim, func(name string) (nettrace.Class, bool, error) {
		fs, ok := feats[name]
		if !ok {
			return 0, false, nil
		}
		pred, err := classify(fs)
		return pred, true, err
	}, dropped, label)
}

// scoreDevices walks the victim's device list in order, asks predict for each
// device's inferred class (observed=false skips a device the attacker never
// saw traffic from), and assembles the Identification accounting. Both the
// batch path (identifyFeatures) and the streaming identifier's Finalize run
// exactly this loop, so their scores cannot drift apart.
func scoreDevices(victim *nettrace.Capture, predict func(name string) (pred nettrace.Class, observed bool, err error),
	dropped []nettrace.Class, label string) (*Identification, error) {
	droppedSet := map[nettrace.Class]bool{}
	for _, class := range dropped {
		droppedSet[class] = true
	}
	out := &Identification{
		Predicted:      map[string]nettrace.Class{},
		PerClass:       map[nettrace.Class]float64{},
		DroppedClasses: dropped,
	}
	correctByClass := map[nettrace.Class]int{}
	totalByClass := map[nettrace.Class]int{}
	var correct, total int
	for _, dev := range victim.Devices {
		pred, ok, err := predict(dev.Name)
		if err != nil {
			return nil, fmt.Errorf("%s %q: %w", label, dev.Name, err)
		}
		if !ok {
			continue
		}
		out.Predicted[dev.Name] = pred
		if droppedSet[dev.Class] {
			out.DroppedDevices++
			continue
		}
		total++
		totalByClass[dev.Class]++
		if pred == dev.Class {
			correct++
			correctByClass[dev.Class]++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("%s: %w: no classifiable devices", label, ErrBadInput)
	}
	out.Accuracy = float64(correct) / float64(total)
	for class, n := range totalByClass {
		out.PerClass[class] = float64(correctByClass[class]) / float64(n)
	}
	return out, nil
}

// Identify classifies every device in a victim capture and scores the
// result against ground truth.
func Identify(c *Classifier, victim *nettrace.Capture) (*Identification, error) {
	feats, err := nettrace.ExtractFeatures(victim, c.window)
	if err != nil {
		return nil, fmt.Errorf("identify: %w", err)
	}
	return identifyFeatures(victim, feats, c.ClassifyDevice, nil, "identify")
}

// OccupancyConfig parameterizes traffic-based occupancy inference.
type OccupancyConfig struct {
	// Window is the inference granularity (default 15 minutes).
	Window time.Duration
	// EventBytes is the flow volume (up+down) above which a flow counts as
	// an activity event rather than a heartbeat (default 50 kB).
	EventBytes int
	// MinEvents is the number of event flows per window that indicates
	// occupancy (default 2).
	MinEvents int
}

// DefaultOccupancyConfig returns the inference configuration used in the
// experiments.
func DefaultOccupancyConfig() OccupancyConfig {
	return OccupancyConfig{Window: 15 * time.Minute, EventBytes: 50_000, MinEvents: 2}
}

// InferOccupancy predicts binary occupancy from a capture: windows with
// enough event-scale flows across the LAN are labeled occupied. The output
// series covers the capture span at the configured window.
func InferOccupancy(cap *nettrace.Capture, cfg OccupancyConfig) (*timeseries.Series, error) {
	d := DefaultOccupancyConfig()
	if cfg.Window == 0 {
		cfg.Window = d.Window
	}
	if cfg.EventBytes == 0 {
		cfg.EventBytes = d.EventBytes
	}
	if cfg.MinEvents == 0 {
		cfg.MinEvents = d.MinEvents
	}
	if cfg.Window <= 0 || cfg.EventBytes <= 0 || cfg.MinEvents <= 0 {
		return nil, fmt.Errorf("infer occupancy: %w: non-positive config", ErrBadInput)
	}
	n := int(cap.End.Sub(cap.Start) / cfg.Window)
	if n <= 0 {
		return nil, fmt.Errorf("infer occupancy: %w: empty capture span", ErrBadInput)
	}
	counts := make([]int, n)
	for _, r := range cap.Records {
		if r.BytesUp+r.BytesDown < cfg.EventBytes {
			continue
		}
		w := nettrace.WindowIndex(cap.Start, r.Time, cfg.Window)
		if w >= 0 && w < n {
			counts[w]++
		}
	}
	out := timeseries.MustNew(cap.Start, cfg.Window, n)
	for i, c := range counts {
		if c >= cfg.MinEvents {
			out.Values[i] = 1
		}
	}
	return out, nil
}
