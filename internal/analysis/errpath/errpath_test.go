package errpath_test

import (
	"testing"

	"privmem/internal/analysis/antest"
	"privmem/internal/analysis/errpath"
)

func TestErrpathFixture(t *testing.T) {
	antest.Run(t, "testdata/src/errpath", errpath.Analyzer)
}
