// Package nettrace simulates the local-network traffic of a smart home's
// IoT devices (§IV of the paper): tens of untrusted devices on an
// implicitly trusted LAN, each maintaining cloud connections with
// device-distinctive traffic patterns, optionally tied to occupant activity
// (cameras upload on motion, locks actuate on departures), and optionally
// compromised (scanning, exfiltration, DDoS bots).
//
// The simulator emits flow-metadata records — timestamp, device, endpoint,
// direction, bytes — which is exactly what a passive observer of encrypted
// traffic (or a gateway) can see. The fingerprint attack and the smart
// gateway defense both consume this metadata.
package nettrace

import (
	"fmt"
	"time"
)

// Class is a device category with a characteristic traffic behaviour.
type Class int

// Device classes found in a typical smart home.
const (
	ClassCamera Class = iota + 1
	ClassThermostat
	ClassSmartPlug
	ClassLock
	ClassTV
	ClassSpeaker
	ClassHub
	ClassBulb
	ClassDoorbell
	ClassVacuum
)

// Classes lists every class, for iteration.
func Classes() []Class {
	return []Class{
		ClassCamera, ClassThermostat, ClassSmartPlug, ClassLock, ClassTV,
		ClassSpeaker, ClassHub, ClassBulb, ClassDoorbell, ClassVacuum,
	}
}

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCamera:
		return "camera"
	case ClassThermostat:
		return "thermostat"
	case ClassSmartPlug:
		return "smart-plug"
	case ClassLock:
		return "lock"
	case ClassTV:
		return "smart-tv"
	case ClassSpeaker:
		return "speaker"
	case ClassHub:
		return "hub"
	case ClassBulb:
		return "bulb"
	case ClassDoorbell:
		return "doorbell"
	case ClassVacuum:
		return "vacuum"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Profile is the behavioural model of a device class: periodic cloud
// heartbeats plus event traffic, some of it coupled to occupant activity.
type Profile struct {
	// Class identifies the category.
	Class Class
	// Endpoints are the cloud hosts the device talks to.
	Endpoints []string
	// HeartbeatPeriod is the keep-alive interval; HeartbeatJitter its
	// relative randomization.
	HeartbeatPeriod time.Duration
	HeartbeatJitter float64
	// HeartbeatUp and HeartbeatDown are bytes per keep-alive.
	HeartbeatUp, HeartbeatDown int
	// EventRatePerHour is the base rate of event bursts while triggered
	// (see ActivityLinked).
	EventRatePerHour float64
	// EventUp and EventDown are bytes per event burst (mean; actual bursts
	// jitter around it).
	EventUp, EventDown int
	// ActivityLinked couples event generation to home activity: events fire
	// at EventRatePerHour only while occupants are active (cameras see
	// motion, locks actuate at transitions); otherwise events fire at
	// IdleEventFraction of the rate.
	ActivityLinked bool
	// IdleEventFraction scales the event rate while the home is inactive.
	IdleEventFraction float64
}

// Profiles returns the behavioural models used in the experiments,
// calibrated to the magnitudes reported in IoT traffic measurement studies:
// cameras dominated by upstream video, TVs by downstream streaming,
// plugs/bulbs by tiny telemetry.
func Profiles() map[Class]Profile {
	return map[Class]Profile{
		ClassCamera: {
			Class:             ClassCamera,
			Endpoints:         []string{"cam-cloud.example.com", "cam-stun.example.com"},
			HeartbeatPeriod:   20 * time.Second,
			HeartbeatJitter:   0.2,
			HeartbeatUp:       180,
			HeartbeatDown:     120,
			EventRatePerHour:  6,
			EventUp:           2_500_000, // motion clip upload
			EventDown:         15_000,
			ActivityLinked:    true,
			IdleEventFraction: 0.08, // pets, shadows
		},
		ClassThermostat: {
			Class:            ClassThermostat,
			Endpoints:        []string{"thermo-cloud.example.com"},
			HeartbeatPeriod:  60 * time.Second,
			HeartbeatJitter:  0.1,
			HeartbeatUp:      400,
			HeartbeatDown:    300,
			EventRatePerHour: 0.5,
			EventUp:          2_000,
			EventDown:        1_500,
		},
		ClassSmartPlug: {
			Class:            ClassSmartPlug,
			Endpoints:        []string{"plug-cloud.example.com"},
			HeartbeatPeriod:  30 * time.Second,
			HeartbeatJitter:  0.15,
			HeartbeatUp:      120,
			HeartbeatDown:    90,
			EventRatePerHour: 0.2,
			EventUp:          600,
			EventDown:        400,
		},
		ClassLock: {
			Class:             ClassLock,
			Endpoints:         []string{"lock-cloud.example.com"},
			HeartbeatPeriod:   120 * time.Second,
			HeartbeatJitter:   0.1,
			HeartbeatUp:       250,
			HeartbeatDown:     200,
			EventRatePerHour:  0.8, // actuations cluster at departures/returns
			EventUp:           3_000,
			EventDown:         2_000,
			ActivityLinked:    true,
			IdleEventFraction: 0.05,
		},
		ClassTV: {
			Class:             ClassTV,
			Endpoints:         []string{"tv-cdn.example.com", "tv-ads.example.com"},
			HeartbeatPeriod:   45 * time.Second,
			HeartbeatJitter:   0.2,
			HeartbeatUp:       500,
			HeartbeatDown:     800,
			EventRatePerHour:  1.2, // streaming sessions
			EventUp:           120_000,
			EventDown:         45_000_000, // video download
			ActivityLinked:    true,
			IdleEventFraction: 0.02,
		},
		ClassSpeaker: {
			Class:             ClassSpeaker,
			Endpoints:         []string{"voice-cloud.example.com", "music-cdn.example.com"},
			HeartbeatPeriod:   25 * time.Second,
			HeartbeatJitter:   0.2,
			HeartbeatUp:       300,
			HeartbeatDown:     250,
			EventRatePerHour:  2.5, // voice queries, music
			EventUp:           90_000,
			EventDown:         2_000_000,
			ActivityLinked:    true,
			IdleEventFraction: 0.03,
		},
		ClassHub: {
			Class:            ClassHub,
			Endpoints:        []string{"hub-cloud.example.com", "hub-telemetry.example.com"},
			HeartbeatPeriod:  15 * time.Second,
			HeartbeatJitter:  0.1,
			HeartbeatUp:      700,
			HeartbeatDown:    600,
			EventRatePerHour: 4, // relayed device state changes
			EventUp:          5_000,
			EventDown:        3_000,
		},
		ClassBulb: {
			Class:             ClassBulb,
			Endpoints:         []string{"bulb-cloud.example.com"},
			HeartbeatPeriod:   90 * time.Second,
			HeartbeatJitter:   0.25,
			HeartbeatUp:       100,
			HeartbeatDown:     80,
			EventRatePerHour:  1.5, // on/off commands while home
			EventUp:           500,
			EventDown:         350,
			ActivityLinked:    true,
			IdleEventFraction: 0.05,
		},
		ClassDoorbell: {
			Class:             ClassDoorbell,
			Endpoints:         []string{"bell-cloud.example.com"},
			HeartbeatPeriod:   30 * time.Second,
			HeartbeatJitter:   0.2,
			HeartbeatUp:       200,
			HeartbeatDown:     150,
			EventRatePerHour:  1, // rings and porch motion
			EventUp:           1_800_000,
			EventDown:         10_000,
			ActivityLinked:    true,
			IdleEventFraction: 0.25, // street motion regardless of occupancy
		},
		ClassVacuum: {
			Class:            ClassVacuum,
			Endpoints:        []string{"vac-cloud.example.com"},
			HeartbeatPeriod:  300 * time.Second,
			HeartbeatJitter:  0.2,
			HeartbeatUp:      350,
			HeartbeatDown:    250,
			EventRatePerHour: 0.15, // map upload after cleaning runs
			EventUp:          800_000,
			EventDown:        20_000,
		},
	}
}
