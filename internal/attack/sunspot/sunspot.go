// Package sunspot implements the SunSpot localization attack [4]: recovering
// the location of an "anonymous" solar-powered home from nothing but its
// generation time series. Generation reveals when the sun rises and sets
// (generation starts and stops) and when it peaks (solar noon); those times
// are governed by latitude and longitude (package sun), so aggregating
// noisy per-day estimates over many days localizes the site.
package sunspot

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"privmem/internal/stats"
	"privmem/internal/sun"
	"privmem/internal/timeseries"
)

// ErrBadInput indicates an unusable generation trace.
var ErrBadInput = errors.New("sunspot: invalid input")

// Config parameterizes the attack.
type Config struct {
	// Threshold is the fraction of a day's peak generation that marks
	// production start/stop (default 0.03).
	Threshold float64
	// MinPeakW skips days whose peak generation is below this (deeply
	// overcast days carry almost no sunrise signal; default 200 W).
	MinPeakW float64
	// MinDays is the minimum number of usable days (default 10).
	MinDays int
}

// DefaultConfig returns the attack configuration used in the experiments.
func DefaultConfig() Config {
	return Config{Threshold: 0.03, MinPeakW: 200, MinDays: 10}
}

func (c *Config) withDefaults() Config {
	out := *c
	d := DefaultConfig()
	if out.Threshold == 0 {
		out.Threshold = d.Threshold
	}
	if out.MinPeakW == 0 {
		out.MinPeakW = d.MinPeakW
	}
	if out.MinDays == 0 {
		out.MinDays = d.MinDays
	}
	return out
}

func (c *Config) validate() error {
	switch {
	case c.Threshold <= 0 || c.Threshold >= 0.5:
		return fmt.Errorf("%w: threshold %v", ErrBadInput, c.Threshold)
	case c.MinPeakW < 0:
		return fmt.Errorf("%w: min peak %v W", ErrBadInput, c.MinPeakW)
	case c.MinDays < 1:
		return fmt.Errorf("%w: min days %d", ErrBadInput, c.MinDays)
	}
	return nil
}

// Estimate is a recovered site location.
type Estimate struct {
	// Lat and Lon are the inferred coordinates in degrees.
	Lat, Lon float64
	// DaysUsed counts the per-day estimates aggregated.
	DaysUsed int
}

// dayAnchor holds one day's extracted solar timing.
type dayAnchor struct {
	date                  time.Time
	sunriseMin, sunsetMin float64
}

// Localize runs SunSpot on a generation trace (any uniform step; UTC
// timestamps) and returns the inferred location.
func Localize(gen *timeseries.Series, cfg Config) (Estimate, error) {
	cfg = cfg.withDefaults()
	var est Estimate
	if err := cfg.validate(); err != nil {
		return est, err
	}
	perDay := int(24 * time.Hour / gen.Step)
	if perDay < 24 || gen.Len() < perDay {
		return est, fmt.Errorf("%w: need at least one day at <= 1 h resolution", ErrBadInput)
	}

	anchors := extractAnchors(gen, cfg)
	if len(anchors) < cfg.MinDays {
		return est, fmt.Errorf("%w: only %d usable days (need %d)",
			ErrBadInput, len(anchors), cfg.MinDays)
	}

	// Longitude: the midpoint of the production window tracks solar noon
	// (the dawn/dusk threshold lag is symmetric and cancels), and solar
	// noon plus the equation of time yields longitude directly.
	lons := make([]float64, 0, len(anchors))
	for _, a := range anchors {
		noonMin := (a.sunriseMin + a.sunsetMin) / 2
		eq := sun.EquationOfTime(a.date.Add(12 * time.Hour))
		lons = append(lons, (720-eq-noonMin)/4)
	}
	est.Lon = stats.Median(lons)

	// Latitude: a single day's window length cannot separate latitude from
	// the site's unknown panel geometry (both stretch the curve), but the
	// *seasonal trend* of the window length depends only on latitude while
	// the geometry offset is nearly constant. Fit (latitude, constant
	// offset) jointly against the modeled windows across all usable days.
	lat, err := fitLatitude(anchors, cfg)
	if err != nil {
		return est, err
	}
	est.Lat = lat
	est.DaysUsed = len(anchors)
	return est, nil
}

// fitLatitude fits the latitude whose modeled seasonal window-length trend
// best matches the observations, allowing a constant per-site offset (the
// signature of unknown tilt/azimuth). The offset is the robust median
// residual; the fit minimizes the median absolute deviation around it.
func fitLatitude(anchors []dayAnchor, cfg Config) (float64, error) {
	// Thin to at most maxFitDates evenly spaced days: the model evaluation
	// dominates cost, and evenly spaced days preserve the seasonal span.
	const maxFitDates = 30
	if stride := (len(anchors) + maxFitDates - 1) / maxFitDates; stride > 1 {
		thinned := make([]dayAnchor, 0, maxFitDates)
		for i := 0; i < len(anchors); i += stride {
			thinned = append(thinned, anchors[i])
		}
		anchors = thinned
	}
	obs := make([]float64, len(anchors))
	for i, a := range anchors {
		obs[i] = a.sunsetMin - a.sunriseMin
	}
	score := func(lat, tilt float64) (float64, bool) {
		resid := make([]float64, 0, len(anchors))
		for i, a := range anchors {
			mLen, ok := modelWindowLen(a.date, lat, tilt, cfg.Threshold)
			if !ok {
				continue
			}
			resid = append(resid, obs[i]-mLen)
		}
		if len(resid) < cfg.MinDays {
			return 0, false
		}
		offset := stats.Median(resid)
		var sse float64
		for _, r := range resid {
			d := r - offset
			sse += d * d
		}
		return sse / float64(len(resid)), true
	}
	// The seasonal trend identifies latitude; the unknown tilt bends the
	// trend too, so fit it jointly from a small candidate set.
	tilts := []float64{18, 25, 32}
	bestLat, bestTilt, bestS := 0.0, modelTiltDeg, math.Inf(1)
	const lo, hi, coarse = -60.0, 60.0, 2.0
	for _, tilt := range tilts {
		for lat := lo; lat <= hi; lat += coarse {
			if s, ok := score(lat, tilt); ok && s < bestS {
				bestLat, bestTilt, bestS = lat, tilt, s
			}
		}
	}
	if math.IsInf(bestS, 1) {
		return 0, fmt.Errorf("%w: latitude fit found no valid model days", ErrBadInput)
	}
	a, b := bestLat-coarse, bestLat+coarse
	for i := 0; i < 24; i++ {
		m1 := a + (b-a)*0.382
		m2 := a + (b-a)*0.618
		s1, ok1 := score(m1, bestTilt)
		s2, ok2 := score(m2, bestTilt)
		if !ok1 || !ok2 {
			break
		}
		if s1 < s2 {
			b = m2
		} else {
			a = m1
		}
	}
	return (a + b) / 2, nil
}

// Assumed reference panel for the attacker's forward model: SunSpot does not
// know a site's true geometry, so it models the typical south-facing rooftop.
const (
	modelTiltDeg    = 25.0
	modelAzimuthDeg = 180.0
	modelDiffuse    = 0.16
)

// modelWindowCacheCap bounds the forward-model cache. The attack's working
// set — fit dates × grid latitudes × candidate tilts — is a few hundred
// thousand evaluations but only tens of thousands of distinct keys, far
// below the cap; clearing on overflow only fires under adversarial key
// churn and costs one recomputation pass. A variable (not a const) so the
// eviction test can shrink it without doing 2^17 real model evaluations.
var modelWindowCacheCap = 1 << 17

// windowKey identifies one forward-model evaluation. The date is reduced to
// its UTC day, matching modelWindowLen's own truncation.
type windowKey struct {
	day            int64
	lat, tilt, thr float64
}

type windowVal struct {
	minutes float64
	ok      bool
}

// modelWindowCache memoizes modelWindowLen across sites and runs. The
// function is pure, so a racing duplicate compute stores the identical
// value; a read lock keeps the hot hit path concurrent.
var modelWindowCache = struct {
	sync.RWMutex
	m map[windowKey]windowVal
}{m: make(map[windowKey]windowVal)}

// resetModelWindowCache empties the cache (tests).
func resetModelWindowCache() {
	modelWindowCache.Lock()
	modelWindowCache.m = make(map[windowKey]windowVal)
	modelWindowCache.Unlock()
}

// modelWindowCacheLen reports the cache's current entry count (tests).
func modelWindowCacheLen() int {
	modelWindowCache.RLock()
	defer modelWindowCache.RUnlock()
	return len(modelWindowCache.m)
}

// modelWindowLen returns the modeled production-window length (minutes) for
// a clear-sky, south-facing reference panel at the given latitude and date,
// using the same fractional threshold as the attack. ok is false on polar
// days. Results are memoized: the latitude search re-evaluates the same
// (day, grid-latitude, tilt) triples for every site, and repeated runs over
// the same season hit a warm cache.
//
//lint:trust modelWindowLen RWMutex-guarded pure-function memo: the cached value is a deterministic function of the key, so hit/miss order cannot change any result
func modelWindowLen(date time.Time, lat, tilt, thresholdFrac float64) (minutes float64, ok bool) {
	day := time.Date(date.Year(), date.Month(), date.Day(), 0, 0, 0, 0, time.UTC)
	k := windowKey{day: day.Unix(), lat: lat, tilt: tilt, thr: thresholdFrac}
	modelWindowCache.RLock()
	v, hit := modelWindowCache.m[k]
	modelWindowCache.RUnlock()
	if hit {
		return v.minutes, v.ok
	}
	minutes, ok = computeModelWindowLen(day, lat, tilt, thresholdFrac)
	modelWindowCache.Lock()
	if len(modelWindowCache.m) >= modelWindowCacheCap {
		modelWindowCache.m = make(map[windowKey]windowVal)
	}
	modelWindowCache.m[k] = windowVal{minutes: minutes, ok: ok}
	modelWindowCache.Unlock()
	return minutes, ok
}

// modelStepMin is the forward model's evaluation cadence in minutes; the
// per-day ephemeris cache below is laid out at the same cadence.
const modelStepMin = 3

// dayEphCacheCap bounds the per-day ephemeris cache: each entry is one UTC
// day's 480 precomputed (equation-of-time, declination) pairs (~8 kB). A
// year-long localization sweep needs ~365 entries; the cap only fires under
// adversarial date churn and costs one recomputation pass.
var dayEphCacheCap = 4096

// dayStep is one model-grid instant's location-independent solar terms:
// the declination trigonometry plus the hour angle at the model longitude
// (the forward model always probes at lon=0 — longitude only shifts the
// window, never its length).
type dayStep struct {
	eph sun.TrigEphemeris
	ha  sun.HourAngle
}

// dayEphCache memoizes the location-independent solar terms per UTC day.
// The latitude fit evaluates the same dates for every (grid latitude, tilt)
// combination — 183 combinations per site — so hoisting the trigonometry
// that does not depend on the candidate latitude pays for itself on the
// first grid row. sun.EphemerisAt is pure, so a racing duplicate compute
// stores the identical value.
var dayEphCache = struct {
	sync.RWMutex
	m map[int64][]dayStep
}{m: make(map[int64][]dayStep)}

// dayEphemeris returns day's solar-term table at modelStepMin cadence; day
// must already be truncated to UTC midnight.
func dayEphemeris(day time.Time) []dayStep {
	key := day.Unix()
	dayEphCache.RLock()
	eph, hit := dayEphCache.m[key]
	dayEphCache.RUnlock()
	if hit {
		return eph
	}
	n := 24 * 60 / modelStepMin
	eph = make([]dayStep, n)
	for i := range eph {
		t := day.Add(time.Duration(i*modelStepMin) * time.Minute)
		te := sun.EphemerisAt(t).Trig()
		eph[i] = dayStep{eph: te, ha: sun.HourAngleAt(t, te, 0)}
	}
	dayEphCache.Lock()
	if len(dayEphCache.m) >= dayEphCacheCap {
		dayEphCache.m = make(map[int64][]dayStep)
	}
	dayEphCache.m[key] = eph
	dayEphCache.Unlock()
	return eph
}

// computeModelWindowLen is the uncached forward model; day must already be
// truncated to UTC midnight.
func computeModelWindowLen(day time.Time, lat, tilt, thresholdFrac float64) (minutes float64, ok bool) {
	const stepMin = modelStepMin
	n := 24 * 60 / stepMin
	eph := dayEphemeris(day)
	// Hoist the per-call site trigonometry; OutputTrigHA over the cached
	// day table is bit-identical to sun.PlateOutputEph (see sun.PlateSite).
	ps := sun.NewPlateSite(lat, 0, tilt, modelAzimuthDeg, modelDiffuse)
	gen := make([]float64, n)
	peak := 0.0
	for i := 0; i < n; i++ {
		gen[i] = ps.OutputTrigHA(eph[i].eph, eph[i].ha)
		peak = math.Max(peak, gen[i])
	}
	if peak <= 0 {
		return 0, false
	}
	thr := thresholdFrac * peak
	first, last := -1, -1
	for i, v := range gen {
		if v > thr {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || last <= first {
		return 0, false
	}
	// Polar day at lon=0: window runs edge to edge.
	if first == 0 && last == n-1 {
		return 0, false
	}
	return float64(last-first) * stepMin, true
}

// extractAnchors pulls per-solar-day production start/stop times from the
// trace. Solar days are located as contiguous production runs rather than
// UTC calendar days: depending on longitude a solar day may straddle UTC
// midnight, and slicing by calendar day would corrupt its edges.
func extractAnchors(gen *timeseries.Series, cfg Config) []dayAnchor {
	var anchors []dayAnchor
	globalPeak := gen.Max()
	if globalPeak <= 0 {
		return nil
	}
	floor := 0.005 * globalPeak
	stepMin := gen.Step.Minutes()
	n := gen.Len()

	i := 0
	for i < n {
		// Find the next production run above the noise floor.
		for i < n && gen.Values[i] <= floor {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && gen.Values[i] > floor {
			i++
		}
		end := i // [start, end) above floor

		runPeak := 0.0
		for j := start; j < end; j++ {
			runPeak = math.Max(runPeak, gen.Values[j])
		}
		runLenH := float64(end-start) * stepMin / 60
		if runPeak < cfg.MinPeakW || runLenH < 4 || runLenH > 20 ||
			start == 0 || end == n {
			continue
		}
		// Threshold crossings relative to the run's own peak, with
		// sub-sample interpolation.
		thr := cfg.Threshold * runPeak
		first, last := -1, -1
		for j := start; j < end; j++ {
			if gen.Values[j] > thr {
				if first < 0 {
					first = j
				}
				last = j
			}
		}
		if first <= 0 || last >= n-1 || last <= first {
			continue
		}
		rise := float64(first) - interpFrac(gen.Values[first-1], gen.Values[first], thr)
		set := float64(last) + interpFrac(gen.Values[last+1], gen.Values[last], thr)

		// Express times as minutes after midnight UTC of the run-start
		// date; sunset past midnight simply exceeds 1440.
		startTime := gen.TimeAt(first)
		date := time.Date(startTime.Year(), startTime.Month(), startTime.Day(), 0, 0, 0, 0, time.UTC)
		baseMin := date.Sub(gen.Start).Minutes()
		anchors = append(anchors, dayAnchor{
			date:       date,
			sunriseMin: rise*stepMin - baseMin,
			sunsetMin:  set*stepMin - baseMin,
		})
	}
	return anchors
}

// interpFrac returns how far (in samples, 0..1) the threshold crossing sits
// beyond the inner sample toward the outer one.
func interpFrac(outer, inner, thr float64) float64 {
	if inner <= outer {
		return 0
	}
	f := (inner - thr) / (inner - outer)
	return math.Max(0, math.Min(1, f))
}

// DebugAnchor exposes one extracted solar-day anchor for diagnostics.
type DebugAnchor struct {
	// Date is the UTC date the times are relative to.
	Date time.Time
	// SunriseMin and SunsetMin are minutes after midnight UTC of Date.
	SunriseMin, SunsetMin float64
}

// DebugAnchors exposes the attack's extracted anchors for diagnostics and
// tests.
func DebugAnchors(gen *timeseries.Series, cfg Config) []DebugAnchor {
	cfg = cfg.withDefaults()
	out := []DebugAnchor{}
	for _, a := range extractAnchors(gen, cfg) {
		out = append(out, DebugAnchor{Date: a.date, SunriseMin: a.sunriseMin, SunsetMin: a.sunsetMin})
	}
	return out
}
