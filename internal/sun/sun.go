// Package sun implements the NOAA solar-geometry equations: declination,
// equation of time, sunrise/sunset/solar-noon times, solar position, and a
// simple clear-sky irradiance model. It also provides the inverse solver —
// from observed sunrise/sunset times back to latitude and longitude — which
// is the core of the SunSpot localization attack [4]: solar generation data
// indirectly reveals when the sun rises and sets, and those times are
// governed by the site's coordinates.
//
// Conventions: latitude in degrees north (positive), longitude in degrees
// east (negative for the Americas), times in UTC.
package sun

import (
	"errors"
	"fmt"
	"math"
	"time"
)

const (
	degToRad = math.Pi / 180
	radToDeg = 180 / math.Pi
	// zenithSunrise is the solar zenith angle at official sunrise/sunset,
	// including refraction and the solar disc radius (NOAA: 90.833 deg).
	zenithSunrise = 90.833
)

// ErrPolar indicates the sun does not rise or set at the requested latitude
// and date (polar day or night).
var ErrPolar = errors.New("sun: no sunrise/sunset at this latitude and date")

// ErrBadInput indicates physically impossible inputs.
var ErrBadInput = errors.New("sun: invalid input")

// fractionalYear returns the NOAA fractional year angle (radians) for a UTC
// time.
func fractionalYear(t time.Time) float64 {
	doy := float64(t.YearDay())
	hour := float64(t.Hour()) + float64(t.Minute())/60
	return 2 * math.Pi / 365 * (doy - 1 + (hour-12)/24)
}

// Declination returns the solar declination in degrees for a UTC time.
func Declination(t time.Time) float64 {
	g := fractionalYear(t)
	d := 0.006918 - 0.399912*math.Cos(g) + 0.070257*math.Sin(g) -
		0.006758*math.Cos(2*g) + 0.000907*math.Sin(2*g) -
		0.002697*math.Cos(3*g) + 0.00148*math.Sin(3*g)
	return d * radToDeg
}

// EquationOfTime returns the equation of time in minutes for a UTC time:
// the difference between apparent and mean solar time.
func EquationOfTime(t time.Time) float64 {
	g := fractionalYear(t)
	return 229.18 * (0.000075 + 0.001868*math.Cos(g) - 0.032077*math.Sin(g) -
		0.014615*math.Cos(2*g) - 0.040849*math.Sin(2*g))
}

// DayTimes holds the three solar anchors of one day at one location, as
// minutes after 00:00 UTC.
type DayTimes struct {
	// SunriseMin, NoonMin, and SunsetMin are minutes after midnight UTC.
	SunriseMin, NoonMin, SunsetMin float64
}

// DayLengthMin returns the day length in minutes.
func (d DayTimes) DayLengthMin() float64 { return d.SunsetMin - d.SunriseMin }

// RiseSet computes sunrise, solar noon, and sunset (UTC minutes) for the
// given date and location using the NOAA algorithm.
func RiseSet(date time.Time, latDeg, lonDeg float64) (DayTimes, error) {
	var out DayTimes
	if latDeg < -90 || latDeg > 90 || lonDeg < -180 || lonDeg > 180 {
		return out, fmt.Errorf("%w: lat=%v lon=%v", ErrBadInput, latDeg, lonDeg)
	}
	noonUTC := time.Date(date.Year(), date.Month(), date.Day(), 12, 0, 0, 0, time.UTC)
	eq := EquationOfTime(noonUTC)
	decl := Declination(noonUTC) * degToRad
	lat := latDeg * degToRad

	cosHA := math.Cos(zenithSunrise*degToRad)/(math.Cos(lat)*math.Cos(decl)) -
		math.Tan(lat)*math.Tan(decl)
	if cosHA < -1 || cosHA > 1 {
		return out, fmt.Errorf("%w: lat=%.2f date=%s", ErrPolar, latDeg, date.Format("2006-01-02"))
	}
	ha := math.Acos(cosHA) * radToDeg

	out.SunriseMin = 720 - 4*(lonDeg+ha) - eq
	out.SunsetMin = 720 - 4*(lonDeg-ha) - eq
	out.NoonMin = 720 - 4*lonDeg - eq
	return out, nil
}

// Ephemeris caches the location-independent solar terms of one instant: the
// equation of time (minutes) and the declination (radians). Position,
// ClearSkyGHI, and PlateOutput derive everything else from these two numbers
// plus the coordinates, so sweeps that evaluate many candidate locations at
// the same instants — SunSpot's latitude grid, the solar fleet — can hoist
// the trigonometry out of the location loop. The *Eph variants below accept
// a precomputed Ephemeris and run the identical arithmetic in the identical
// order, so hoisting is bit-transparent.
type Ephemeris struct {
	// EqMin is the equation of time in minutes.
	EqMin float64
	// DeclRad is the solar declination in radians.
	DeclRad float64
}

// EphemerisAt computes the instant's ephemeris terms exactly as Position
// does internally.
func EphemerisAt(t time.Time) Ephemeris {
	return Ephemeris{EqMin: EquationOfTime(t), DeclRad: Declination(t) * degToRad}
}

// Position returns the solar zenith and azimuth angles (degrees) at a UTC
// instant and location. Azimuth is measured clockwise from north.
func Position(t time.Time, latDeg, lonDeg float64) (zenithDeg, azimuthDeg float64) {
	return PositionEph(t, EphemerisAt(t), latDeg, lonDeg)
}

// PositionEph is Position with the instant's ephemeris terms precomputed.
func PositionEph(t time.Time, eph Ephemeris, latDeg, lonDeg float64) (zenithDeg, azimuthDeg float64) {
	eq := eph.EqMin
	decl := eph.DeclRad
	lat := latDeg * degToRad

	// True solar time in minutes.
	offset := eq + 4*lonDeg
	tst := float64(t.Hour())*60 + float64(t.Minute()) + float64(t.Second())/60 + offset
	haDeg := tst/4 - 180
	ha := haDeg * degToRad

	cosZen := math.Sin(lat)*math.Sin(decl) + math.Cos(lat)*math.Cos(decl)*math.Cos(ha)
	cosZen = math.Max(-1, math.Min(1, cosZen))
	zen := math.Acos(cosZen)

	// Azimuth from north, clockwise.
	sinZen := math.Sin(zen)
	var az float64
	if sinZen > 1e-9 {
		cosAz := (math.Sin(decl) - math.Sin(lat)*cosZen) / (math.Cos(lat) * sinZen)
		cosAz = math.Max(-1, math.Min(1, cosAz))
		az = math.Acos(cosAz) * radToDeg
		if haDeg > 0 {
			az = 360 - az
		}
	}
	return zen * radToDeg, az
}

// ClearSkyGHI returns a simple clear-sky global horizontal irradiance in
// W/m^2 at a UTC instant and location: extraterrestrial irradiance scaled by
// an air-mass-dependent atmospheric transmittance (the Meinel model). It is
// zero when the sun is below the horizon.
func ClearSkyGHI(t time.Time, latDeg, lonDeg float64) float64 {
	zen, _ := Position(t, latDeg, lonDeg)
	return ghiFromZenith(zen)
}

// ghiFromZenith is the irradiance model given an already-computed zenith
// angle: Kasten-Young air mass with the Meinel clear-sky transmittance,
// GHI = 1353 * 0.7^(AM^0.678) * cos(zenith).
func ghiFromZenith(zen float64) float64 {
	if zen >= 90 {
		return 0
	}
	cosZen := math.Cos(zen * degToRad)
	airMass := 1 / (cosZen + 0.50572*math.Pow(96.07995-zen, -1.6364))
	return 1353 * math.Pow(0.7, math.Pow(airMass, 0.678)) * cosZen
}

// InverseRiseSet recovers latitude and longitude from observed sunrise and
// sunset times (UTC minutes after midnight) on a given date — the SunSpot
// inversion. Longitude follows from solar noon (the midpoint) and the
// equation of time; latitude is solved from the day length.
//
// Within a few days of an equinox the day length is symmetric in latitude,
// so two latitudes can match; this function returns the northern candidate.
// Use InverseRiseSetNear with a hint to disambiguate.
func InverseRiseSet(date time.Time, sunriseMin, sunsetMin float64) (latDeg, lonDeg float64, err error) {
	return InverseRiseSetNear(date, sunriseMin, sunsetMin, math.NaN())
}

// InverseRiseSetNear is InverseRiseSet with a latitude hint: when the day
// length admits more than one latitude (near the equinoxes), the root
// closest to latHintDeg is returned. A NaN hint selects the northernmost
// root.
func InverseRiseSetNear(date time.Time, sunriseMin, sunsetMin, latHintDeg float64) (latDeg, lonDeg float64, err error) {
	if sunsetMin <= sunriseMin {
		return 0, 0, fmt.Errorf("%w: sunset %.1f before sunrise %.1f", ErrBadInput, sunsetMin, sunriseMin)
	}
	noonUTC := time.Date(date.Year(), date.Month(), date.Day(), 12, 0, 0, 0, time.UTC)
	eq := EquationOfTime(noonUTC)
	decl := Declination(noonUTC) * degToRad

	noon := (sunriseMin + sunsetMin) / 2
	lonDeg = (720 - eq - noon) / 4

	// Day length determines the half-day hour angle (4 minutes per degree);
	// latitude then follows from the sunrise equation.
	haDeg := (sunsetMin - sunriseMin) / 2 / 4
	target := math.Cos(haDeg * degToRad)
	f := func(latRad float64) float64 {
		return math.Cos(zenithSunrise*degToRad)/(math.Cos(latRad)*math.Cos(decl)) -
			math.Tan(latRad)*math.Tan(decl) - target
	}

	// Scan for every bracketing interval and refine each root by bisection.
	// Near the equinoxes f may not change sign at all; then the latitude of
	// minimum inconsistency is the best estimate (callers such as SunSpot
	// average estimates over many days, which suppresses the noise).
	const latLimit = 66.0
	const scanStep = 0.5
	var roots []float64
	bestScan, bestAbs := 0.0, math.Inf(1)
	prevLat := -latLimit
	prevF := f(prevLat * degToRad)
	for latScan := -latLimit + scanStep; latScan <= latLimit+1e-9; latScan += scanStep {
		cur := f(latScan * degToRad)
		if a := math.Abs(cur); a < bestAbs {
			bestAbs, bestScan = a, latScan
		}
		if prevF*cur <= 0 {
			roots = append(roots, bisectLat(f, prevLat*degToRad, latScan*degToRad))
		}
		prevLat, prevF = latScan, cur
	}
	if len(roots) == 0 {
		return bestScan, lonDeg, nil
	}
	chosen := roots[len(roots)-1] // northernmost by scan order
	if !math.IsNaN(latHintDeg) {
		for _, r := range roots {
			if math.Abs(r-latHintDeg) < math.Abs(chosen-latHintDeg) {
				chosen = r
			}
		}
	}
	return chosen, lonDeg, nil
}

// bisectLat refines a root of f (in radians) bracketed by [lo, hi] and
// returns it in degrees.
func bisectLat(f func(float64) float64, lo, hi float64) float64 {
	flo := f(lo)
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 {
			return mid * radToDeg
		}
		if flo*fm < 0 {
			hi = mid
		} else {
			lo = mid
			flo = fm
		}
	}
	return (lo + hi) / 2 * radToDeg
}

// PlateOutput returns the relative clear-sky output (W/m^2-scale) of a
// tilted flat-plate collector at a UTC instant and location. GHI is split
// into a diffuse fraction, which the panel sees from dawn to dusk weighted
// by its sky-view factor, and a beam component scaled by the panel's
// incidence geometry. Both the PV simulator and the solar attacks
// (SunSpot's forward model, SunDance's generation model) build on this.
func PlateOutput(t time.Time, latDeg, lonDeg, tiltDeg, azimuthDeg, diffuseFrac float64) float64 {
	return PlateOutputEph(t, EphemerisAt(t), latDeg, lonDeg, tiltDeg, azimuthDeg, diffuseFrac)
}

// PlateOutputEph is PlateOutput with the instant's ephemeris terms
// precomputed. The zenith is computed once and feeds both the irradiance
// model and the incidence geometry (PlateOutput formerly solved the solar
// position twice, once directly and once inside ClearSkyGHI; the two calls
// were bit-identical, so sharing the result is a pure speedup).
func PlateOutputEph(t time.Time, eph Ephemeris, latDeg, lonDeg, tiltDeg, azimuthDeg, diffuseFrac float64) float64 {
	zen, az := PositionEph(t, eph, latDeg, lonDeg)
	if zen >= 90 {
		return 0
	}
	ghi := ghiFromZenith(zen)
	if ghi <= 0 {
		return 0
	}
	dhi := diffuseFrac * ghi
	beamH := ghi - dhi
	cosZen := math.Max(0.03, math.Cos(zen*degToRad))
	cosInc := math.Cos(zen*degToRad)*math.Cos(tiltDeg*degToRad) +
		math.Sin(zen*degToRad)*math.Sin(tiltDeg*degToRad)*
			math.Cos((az-azimuthDeg)*degToRad)
	beamFactor := math.Min(3, math.Max(0, cosInc)/cosZen)
	skyView := (1 + math.Cos(tiltDeg*degToRad)) / 2
	return dhi*skyView + beamH*beamFactor
}
